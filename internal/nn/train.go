package nn

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// TrainConfig controls Train.
type TrainConfig struct {
	LR          float64 // peak learning rate (0 → 3e-3)
	Batch       int     // sequences per optimizer step (0 → 16)
	Epochs      int     // passes over the corpus (0 → 1)
	ClipNorm    float64 // global gradient-norm clip (0 → 1.0)
	Warmup      int     // warmup steps (0 → 20)
	Seed        int64   // shuffling seed
	Workers     int     // parallel gradient workers (0 → GOMAXPROCS)
	LogEvery    int     // steps between Logf calls (0 → never)
	Logf        func(format string, args ...any)
	WeightDecay float64 // decoupled weight decay (AdamW style; 0 → none)
}

func (tc *TrainConfig) fill() {
	if tc.LR == 0 {
		tc.LR = 3e-3
	}
	if tc.Batch == 0 {
		tc.Batch = 16
	}
	if tc.Epochs == 0 {
		tc.Epochs = 1
	}
	if tc.ClipNorm == 0 {
		tc.ClipNorm = 1.0
	}
	if tc.Warmup == 0 {
		tc.Warmup = 20
	}
	if tc.Workers == 0 {
		tc.Workers = runtime.GOMAXPROCS(0)
	}
}

// Train optimizes the model on the token sequences with Adam, returning the
// per-step mean training loss. Each sequence must have length ≥ 2 and at
// most Ctx+1 (inputs are seq[:len-1]).
func (m *Model) Train(seqs [][]int, tc TrainConfig) ([]float64, error) {
	tc.fill()
	if len(seqs) == 0 {
		return nil, fmt.Errorf("nn: no training sequences")
	}
	for i, s := range seqs {
		if len(s) < 2 {
			return nil, fmt.Errorf("nn: sequence %d too short", i)
		}
		if len(s)-1 > m.Cfg.Ctx {
			return nil, fmt.Errorf("nn: sequence %d length %d exceeds context %d", i, len(s)-1, m.Cfg.Ctx)
		}
	}
	rng := rand.New(rand.NewSource(tc.Seed))
	order := make([]int, len(seqs))
	for i := range order {
		order[i] = i
	}

	nWorkers := tc.Workers
	workerGrads := make([]*grads, nWorkers)
	for i := range workerGrads {
		workerGrads[i] = m.newGrads()
	}
	total := m.newGrads()

	totalSteps := tc.Epochs * ((len(seqs) + tc.Batch - 1) / tc.Batch)
	var history []float64
	step := 0
	for epoch := 0; epoch < tc.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += tc.Batch {
			end := start + tc.Batch
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]

			total.zero()
			var mu sync.Mutex
			var batchLoss float64
			var batchErr error
			var wg sync.WaitGroup
			chunk := (len(batch) + nWorkers - 1) / nWorkers
			for w := 0; w < nWorkers; w++ {
				lo := w * chunk
				if lo >= len(batch) {
					break
				}
				hi := lo + chunk
				if hi > len(batch) {
					hi = len(batch)
				}
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					g := workerGrads[w]
					g.zero()
					var local float64
					for _, idx := range batch[lo:hi] {
						loss, err := m.backward(seqs[idx], g)
						if err != nil {
							mu.Lock()
							if batchErr == nil {
								batchErr = err
							}
							mu.Unlock()
							return
						}
						local += loss
					}
					mu.Lock()
					batchLoss += local
					total.add(g)
					mu.Unlock()
				}(w, lo, hi)
			}
			wg.Wait()
			if batchErr != nil {
				return history, batchErr
			}

			// Average gradients over the batch.
			inv := float32(1 / float64(len(batch)))
			for _, buf := range total.g {
				for i := range buf {
					buf[i] *= inv
				}
			}

			lr := lrAt(tc, step, totalSteps)
			m.adamStep(total, lr, tc.ClipNorm, tc.WeightDecay)
			step++
			history = append(history, batchLoss/float64(len(batch)))
			if tc.LogEvery > 0 && tc.Logf != nil && step%tc.LogEvery == 0 {
				tc.Logf("nn: step %d/%d epoch %d loss %.4f lr %.2e", step, totalSteps, epoch, history[len(history)-1], lr)
			}
		}
	}
	return history, nil
}

// lrAt implements linear warmup followed by cosine decay to 10% of peak.
func lrAt(tc TrainConfig, step, total int) float64 {
	if step < tc.Warmup {
		return tc.LR * float64(step+1) / float64(tc.Warmup)
	}
	if total <= tc.Warmup {
		return tc.LR
	}
	prog := float64(step-tc.Warmup) / float64(total-tc.Warmup)
	if prog > 1 {
		prog = 1
	}
	minLR := tc.LR * 0.1
	return minLR + (tc.LR-minLR)*0.5*(1+math.Cos(math.Pi*prog))
}

// adamStep applies one Adam update with global-norm clipping.
func (m *Model) adamStep(g *grads, lr, clipNorm, weightDecay float64) {
	// Global norm.
	var norm float64
	for _, buf := range g.g {
		for _, v := range buf {
			norm += float64(v) * float64(v)
		}
	}
	norm = math.Sqrt(norm)
	scale := 1.0
	if clipNorm > 0 && norm > clipNorm {
		scale = clipNorm / norm
	}

	m.step++
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	bc1 := 1 - math.Pow(beta1, float64(m.step))
	bc2 := 1 - math.Pow(beta2, float64(m.step))
	for pi, p := range m.params {
		buf := g.g[pi]
		for i := range p.W {
			gv := float64(buf[i]) * scale
			mo := beta1*float64(p.M[i]) + (1-beta1)*gv
			vo := beta2*float64(p.V[i]) + (1-beta2)*gv*gv
			p.M[i] = float32(mo)
			p.V[i] = float32(vo)
			upd := lr * (mo / bc1) / (math.Sqrt(vo/bc2) + eps)
			if weightDecay > 0 {
				upd += lr * weightDecay * float64(p.W[i])
			}
			p.W[i] -= float32(upd)
		}
	}
}

// EvalLoss computes the mean per-sequence loss over a held-out set.
func (m *Model) EvalLoss(seqs [][]int) (float64, error) {
	if len(seqs) == 0 {
		return 0, fmt.Errorf("nn: no sequences")
	}
	var total float64
	for _, s := range seqs {
		l, err := m.Loss(s)
		if err != nil {
			return 0, err
		}
		total += l
	}
	return total / float64(len(seqs)), nil
}
