package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// LaneError reports that one lane of an AppendBatch call was invalid (token
// out of vocab, context length exceeded, bad or duplicate lane id). The call
// validates every lane before mutating any state, so on a LaneError the
// batch session is unchanged: the caller can drop the offending lane and
// retry with the rest.
type LaneError struct {
	Lane int
	Err  error
}

func (e *LaneError) Error() string { return fmt.Sprintf("nn: lane %d: %v", e.Lane, e.Err) }
func (e *LaneError) Unwrap() error { return e.Err }

// BatchSession steps up to n independent decoding sessions ("lanes") through
// the model in lock-step. Where Session.Append is a chain of matrix-vector
// products that stream every weight matrix from memory once per token per
// record, AppendBatch runs the active lanes through matLinear/matLinear3
// GEMM kernels that stream each weight block once per token step for the
// whole batch — the per-lane arithmetic (and therefore the float32 result)
// is bit-identical to the single-row kernels.
//
// Lanes are ragged: each has its own position, and any subset may be
// advanced per call (records finish at different steps). All buffers — the
// batch-major KV caches and the per-step activation scratch — are carved
// from one tensor.Arena at construction, so a batch costs O(1) allocations
// regardless of lane count and AppendBatch allocates nothing.
//
// A BatchSession is not safe for concurrent use.
type BatchSession struct {
	m   *Model
	n   int
	pos []int // per-lane tokens consumed
	// Per-layer KV caches, batch-major then head-major: lane b's cache block
	// is kc[l][b*Ctx*Dim : (b+1)*Ctx*Dim] with the same head-major layout as
	// Session, so attention and CloneLane reuse the single-row code shape.
	kc, vc [][]float32
	logits []float32 // [n*Vocab], row lane*Vocab.. persists until the lane's next step
	// Compacted per-step activations: row r of each buffer belongs to the
	// r-th lane passed to the current AppendBatch call.
	x, ln, q, k, v, attn, proj, mlp []float32 // [n*Dim]
	hbuf, hg                        []float32 // [n*F]
	// Per-block kernel scratch: sc.p holds one attention score row per
	// worker block (lanes attend in parallel blocks; serial attention uses
	// sc.p[0]), sc.dq the dequant staging slabs when the model has an int8
	// store. Sized for the worker count at construction.
	sc     kernelScratch
	inStep []bool // [n] duplicate-lane check scratch
}

// NewBatchSession creates a lock-step session with n lanes, all empty.
func (m *Model) NewBatchSession(n int) *BatchSession {
	if n < 1 {
		panic(fmt.Sprintf("nn: NewBatchSession(%d)", n))
	}
	d := m.Cfg.Dim
	f := m.Cfg.ff() * d
	ctx := m.Cfg.Ctx
	cache := ctx * d
	workers := m.KernelWorkers()
	scratch := workers * ctx // per-block attention rows
	if m.quant.Load() != nil {
		scratch += workers * 12 * f // per-block dequant staging
	}
	a := tensor.NewArena(2*m.Cfg.Layers*n*cache + n*m.Cfg.Vocab + 8*n*d + 2*n*f + scratch)
	bs := &BatchSession{
		m:      m,
		n:      n,
		pos:    make([]int, n),
		kc:     make([][]float32, m.Cfg.Layers),
		vc:     make([][]float32, m.Cfg.Layers),
		inStep: make([]bool, n),
	}
	for l := range bs.kc {
		bs.kc[l] = a.Alloc(n * cache)
		bs.vc[l] = a.Alloc(n * cache)
	}
	bs.logits = a.Alloc(n * m.Cfg.Vocab)
	bs.x = a.Alloc(n * d)
	bs.ln = a.Alloc(n * d)
	bs.q = a.Alloc(n * d)
	bs.k = a.Alloc(n * d)
	bs.v = a.Alloc(n * d)
	bs.attn = a.Alloc(n * d)
	bs.proj = a.Alloc(n * d)
	bs.mlp = a.Alloc(n * d)
	bs.hbuf = a.Alloc(n * f)
	bs.hg = a.Alloc(n * f)
	bs.sc.p = make([][]float32, workers)
	for i := range bs.sc.p {
		bs.sc.p[i] = a.Alloc(ctx)
	}
	if m.quant.Load() != nil {
		bs.sc.dq = make([][]float32, workers)
		for i := range bs.sc.dq {
			bs.sc.dq[i] = a.Alloc(12 * f)
		}
	}
	return bs
}

// Lanes returns the lane count the session was created with.
func (bs *BatchSession) Lanes() int { return bs.n }

// Len reports the number of tokens lane has consumed.
func (bs *BatchSession) Len(lane int) int { return bs.pos[lane] }

// AppendBatch feeds toks[i] to lanes[i] for every i and computes each
// advanced lane's next-position logits. Every lane is validated before any
// state is mutated; an invalid lane aborts the whole call with a *LaneError
// and no side effects, so the caller can retire that lane and retry.
func (bs *BatchSession) AppendBatch(lanes, toks []int) error {
	m := bs.m
	if len(lanes) != len(toks) {
		return fmt.Errorf("nn: AppendBatch with %d lanes, %d tokens", len(lanes), len(toks))
	}
	rows := len(lanes)
	if rows == 0 {
		return nil
	}
	for i, lane := range lanes {
		var err error
		switch {
		case lane < 0 || lane >= bs.n:
			err = fmt.Errorf("nn: lane outside batch of %d", bs.n)
		case bs.inStep[lane]:
			err = fmt.Errorf("nn: lane appears twice in one step")
		case toks[i] < 0 || toks[i] >= m.Cfg.Vocab:
			err = fmt.Errorf("nn: token %d outside vocab %d", toks[i], m.Cfg.Vocab)
		case bs.pos[lane] >= m.Cfg.Ctx:
			err = fmt.Errorf("nn: context length %d exceeded", m.Cfg.Ctx)
		}
		if err != nil {
			for _, l := range lanes[:i] {
				bs.inStep[l] = false
			}
			return &LaneError{Lane: lane, Err: err}
		}
		bs.inStep[lane] = true
	}
	for _, lane := range lanes {
		bs.inStep[lane] = false
	}

	d := m.Cfg.Dim
	f := m.Cfg.ff() * d
	h := m.Cfg.Heads
	dh := d / h
	ctx := m.Cfg.Ctx
	scale := float32(1 / math.Sqrt(float64(dh)))

	// Embed each lane's token at its own position into the compacted rows.
	x := bs.x[:rows*d]
	for r, lane := range lanes {
		xr := x[r*d : (r+1)*d]
		copy(xr, m.tok.W[toks[r]*d:(toks[r]+1)*d])
		pw := m.pos.W[bs.pos[lane]*d : (bs.pos[lane]+1)*d]
		for j := range xr {
			xr[j] += pw[j]
		}
	}

	ln := bs.ln[:rows*d]
	q, k, v, attn := bs.q[:rows*d], bs.k[:rows*d], bs.v[:rows*d], bs.attn[:rows*d]
	proj, mlp := bs.proj[:rows*d], bs.mlp[:rows*d]
	hbuf, hg := bs.hbuf[:rows*f], bs.hg[:rows*f]
	mq := m.activeQuant()
	// Attention cost this step, for the parallel-dispatch decision: each
	// lane's q·K and p·V passes touch 2·d floats per attended position.
	attnWork := 0
	for _, lane := range lanes {
		attnWork += 2 * d * (bs.pos[lane] + 1)
	}
	for l := range m.layers {
		ly := &m.layers[l]
		for r := 0; r < rows; r++ {
			tensor.LayerNormRow(ln[r*d:(r+1)*d], x[r*d:(r+1)*d], ly.ln1g.W, ly.ln1b.W)
		}

		// One GEMM for all lanes' q/k/v: each weight block is read once.
		tq, tk, tv, two, tw1, tw2 := mq.layerTensors(l)
		m.gemm3(q, k, v, ln, ly.wq.W, ly.wk.W, ly.wv.W, ly.bq.W, ly.bk.W, ly.bv.W, tq, tk, tv, d, d, rows, &bs.sc)

		// Scatter k/v into each lane's head-major cache block.
		kcl, vcl := bs.kc[l], bs.vc[l]
		for r, lane := range lanes {
			t := bs.pos[lane]
			base := lane * ctx * d
			for hd := 0; hd < h; hd++ {
				dst := base + (hd*ctx+t)*dh
				copy(kcl[dst:dst+dh], k[r*d+hd*dh:r*d+(hd+1)*dh])
				copy(vcl[dst:dst+dh], v[r*d+hd*dh:r*d+(hd+1)*dh])
			}
		}

		// Attention is inherently per-lane: ragged positions mean each lane
		// attends over a different-length history of its own cache block.
		// Lanes are independent, so the worker group shards them as lane
		// blocks (each block gets its own score row sc.p[bi]); within a lane
		// the arithmetic is untouched, so the partition is bit-exact.
		if pool, blocks := m.kernelBlocks(attnWork, rows, 1, len(bs.sc.p)); blocks > 1 {
			m.parallelOps.Add(1)
			pool.parallelFor(blocks, func(bi int) {
				for r := bi * rows / blocks; r < (bi+1)*rows/blocks; r++ {
					bs.attendLane(kcl, vcl, q, attn, r, lanes[r], bs.sc.p[bi], scale)
				}
			})
		} else {
			m.serialOps.Add(1)
			for r, lane := range lanes {
				bs.attendLane(kcl, vcl, q, attn, r, lane, bs.sc.p[0], scale)
			}
		}

		m.gemm(proj, attn, ly.wo.W, ly.bo.W, two, d, d, rows, &bs.sc)
		for i := range x {
			x[i] += proj[i]
		}

		for r := 0; r < rows; r++ {
			tensor.LayerNormRow(ln[r*d:(r+1)*d], x[r*d:(r+1)*d], ly.ln2g.W, ly.ln2b.W)
		}
		m.gemm(hbuf, ln, ly.w1.W, ly.b1.W, tw1, d, f, rows, &bs.sc)
		tensor.GELU(hg, hbuf)
		m.gemm(mlp, hg, ly.w2.W, ly.b2.W, tw2, f, d, rows, &bs.sc)
		for i := range x {
			x[i] += mlp[i]
		}
	}

	for r := 0; r < rows; r++ {
		tensor.LayerNormRow(ln[r*d:(r+1)*d], x[r*d:(r+1)*d], m.lnfg.W, m.lnfb.W)
	}
	// Tied head as a GEMM: vocab-outer so each embedding row is streamed once
	// for all lanes; per lane this is the same ⟨ln, tok_v⟩ as Session.
	m.headLogits(bs.logits, ln, lanes, rows, &bs.sc)
	for _, lane := range lanes {
		bs.pos[lane]++
	}
	return nil
}

// attendLane runs one lane's causal attention over its cache block into the
// compacted attn row r, using p as the score row. A method rather than a
// closure inside AppendBatch so the serial hot path stays allocation-free.
func (bs *BatchSession) attendLane(kcl, vcl, q, attn []float32, r, lane int, p []float32, scale float32) {
	m := bs.m
	d := m.Cfg.Dim
	h := m.Cfg.Heads
	dh := d / h
	ctx := m.Cfg.Ctx
	t := bs.pos[lane]
	base := lane * ctx * d
	ar := attn[r*d : (r+1)*d]
	for i := range ar {
		ar[i] = 0
	}
	for hd := 0; hd < h; hd++ {
		off := hd * dh
		qh := q[r*d+off : r*d+off+dh]
		kh := kcl[base+hd*ctx*dh:]
		vh := vcl[base+hd*ctx*dh:]
		p := p[:t+1]
		for j := 0; j <= t; j++ {
			p[j] = tensor.Dot(qh, kh[j*dh:j*dh+dh]) * scale
		}
		tensor.SoftmaxRow(p)
		out := ar[off : off+dh]
		for j := 0; j <= t; j++ {
			tensor.Axpy(out, p[j], vh[j*dh:j*dh+dh])
		}
	}
}

// Logits returns lane's next-token logits after its last step. The slice is
// owned by the session and overwritten the next time the lane is advanced.
func (bs *BatchSession) Logits(lane int) []float32 {
	if bs.pos[lane] == 0 {
		panic("nn: Logits before any Append on this lane")
	}
	v := bs.m.Cfg.Vocab
	return bs.logits[lane*v : (lane+1)*v]
}

// RewindLane truncates one lane back to pos consumed tokens and restores its
// pending logits row from the caller-supplied snapshot. The lane's KV cache
// block needs no clearing: attention reads only positions ≤ the lane's
// current length, and re-decoding overwrites the stale tail in place. The
// logits are copied into the lane's fixed row, so a caller holding the
// Logits(lane) slice sees the restored values. Other lanes are untouched —
// this is how a speculating lock-step lane rolls back without desyncing the
// batch (DESIGN.md §13).
func (bs *BatchSession) RewindLane(lane, pos int, logits []float32) error {
	v := bs.m.Cfg.Vocab
	switch {
	case lane < 0 || lane >= bs.n:
		return fmt.Errorf("nn: RewindLane lane %d outside batch of %d", lane, bs.n)
	case pos < 0 || pos > bs.pos[lane]:
		return fmt.Errorf("nn: RewindLane(%d) outside [0,%d]", pos, bs.pos[lane])
	case len(logits) != v:
		return fmt.Errorf("nn: RewindLane logits length %d, want %d", len(logits), v)
	}
	bs.pos[lane] = pos
	copy(bs.logits[lane*v:(lane+1)*v], logits)
	return nil
}

// CloneLane extracts lane as an independent single-row Session — same
// consumed prefix, same pending logits, its own KV cache — so a lane can
// leave the lock-step batch and continue on the per-record path (beam
// search, diagnosis, a prefix-cache snapshot) without re-decoding its
// prefix. The lane's contiguous cache block is re-sliced into private pages;
// only the filled positions are copied.
func (bs *BatchSession) CloneLane(lane int) *Session {
	m := bs.m
	v := m.Cfg.Vocab
	c := &Session{m: m, pos: bs.pos[lane],
		logits: append([]float32(nil), bs.logits[lane*v:(lane+1)*v]...)}
	d := m.Cfg.Dim
	dh := d / m.Cfg.Heads
	ctx := m.Cfg.Ctx
	base := lane * ctx * d
	t := bs.pos[lane]
	c.pages = make([]*kvPage, (t+PageTokens-1)/PageTokens)
	for pi := range c.pages {
		pg := newKVPage(m)
		n := t - pi*PageTokens
		if n > PageTokens {
			n = PageTokens
		}
		for l := range bs.kc {
			for hd := 0; hd < m.Cfg.Heads; hd++ {
				src := base + hd*ctx*dh + pi*PageTokens*dh
				dst := hd * PageTokens * dh
				copy(pg.k[l][dst:dst+n*dh], bs.kc[l][src:src+n*dh])
				copy(pg.v[l][dst:dst+n*dh], bs.vc[l][src:src+n*dh])
			}
		}
		c.pages[pi] = pg
	}
	c.initScratch()
	return c
}

// SeedLane initializes an empty lane from a single-row Session: the lane's
// KV block, position, and pending logits become copies of src's, so the
// lock-step batch resumes exactly where src left off. src is only read —
// it may be a shared prefix-cache snapshot, and many lanes may be seeded
// from the same source (each lane gets its own copy of the floats; the
// batch's contiguous cache layout cannot alias pages). Fails if the lane
// has already consumed tokens or src belongs to a different model.
func (bs *BatchSession) SeedLane(lane int, src *Session) error {
	m := bs.m
	switch {
	case lane < 0 || lane >= bs.n:
		return fmt.Errorf("nn: SeedLane lane %d outside batch of %d", lane, bs.n)
	case bs.pos[lane] != 0:
		return fmt.Errorf("nn: SeedLane on a lane with %d tokens consumed", bs.pos[lane])
	case src.m != m:
		return fmt.Errorf("nn: SeedLane from a session of a different model")
	}
	t := src.pos
	if t == 0 {
		return nil
	}
	d := m.Cfg.Dim
	dh := d / m.Cfg.Heads
	ctx := m.Cfg.Ctx
	base := lane * ctx * d
	for l := range bs.kc {
		for hd := 0; hd < m.Cfg.Heads; hd++ {
			dst := base + hd*ctx*dh
			hoff := hd * PageTokens * dh
			j := 0
			for pi := 0; j < t; pi++ {
				n := t - pi*PageTokens
				if n > PageTokens {
					n = PageTokens
				}
				kp := src.pages[pi].k[l][hoff:]
				vp := src.pages[pi].v[l][hoff:]
				copy(bs.kc[l][dst+j*dh:dst+(j+n)*dh], kp[:n*dh])
				copy(bs.vc[l][dst+j*dh:dst+(j+n)*dh], vp[:n*dh])
				j += n
			}
		}
	}
	v := m.Cfg.Vocab
	copy(bs.logits[lane*v:(lane+1)*v], src.logits)
	bs.pos[lane] = t
	return nil
}

// AppendWeightBytes returns how many parameter bytes one Session.Append
// streams from memory: every per-token matrix (attention projections, MLP)
// plus the tied LM head, read in full once per token. The GEMM path reads
// the same bytes once per token *step*, so a lock-step batch of B lanes
// streams AppendWeightBytes/B per lane-token — the quantity BENCH reports
// as bytes/token.
func (m *Model) AppendWeightBytes() int64 {
	d := int64(m.Cfg.Dim)
	f := int64(m.Cfg.ff()) * d
	perLayer := 4*d*d + 2*d*f // wq,wk,wv,wo + w1,w2
	return 4 * (int64(m.Cfg.Layers)*perLayer + int64(m.Cfg.Vocab)*d)
}

// matLinear is the batched form of vecLinear: Y = X·W + b for X [rows, in]
// and Y [rows, out], both compacted row-major. The loop order is weight
// block outer, lane inner: each 4-row block of W is loaded once and folded
// into every lane before moving on, so W streams from memory once per call
// instead of once per lane. Within a lane the accumulation order is exactly
// vecLinear's (same 4-wide blocks via accumBlock4, same tail), so each
// output row is bit-identical to a vecLinear call on that row alone. This
// is the serial full-range case of matLinearCols (gemm.go); the sharded and
// int8 paths go through Model.gemm.
func matLinear(y, x, w, b []float32, in, out, rows int) {
	matLinearCols(y, x, w, b, nil, in, out, rows, 0, out, nil)
}

// matLinear3 is the batched form of vecLinear3: the three attention
// projections for all lanes in one pass, with each 4-row block of Wq/Wk/Wv
// read once per token step. Per lane the q/k/v accumulation order matches
// vecLinear3 exactly, so the outputs are bit-identical to the single-row
// kernel. Serial full-range case of matLinear3Cols (gemm.go).
func matLinear3(q, k, v, x, wq, wk, wv, bq, bk, bv []float32, in, out, rows int) {
	matLinear3Cols(q, k, v, x, wq, wk, wv, bq, bk, bv, nil, nil, nil, in, out, rows, 0, out, nil)
}
