package nn

import (
	"fmt"
	"math"
)

// This file implements the int8 weight store (DESIGN.md §15): a per-row
// affine encoding of the decode-path weight matrices that the kernels
// dequantize on the fly. Quantization here is a storage/bandwidth format,
// not an approximation — the kernels only ever multiply by
// dequant(q) = zero + scale·float32(q+128), and a row is served from the
// int8 store only when that expression reproduces the row's float32
// weights bit-for-bit, verified at build time. Rows that do not round-trip
// fall back to the retained float32 weights, so enabling the store can
// never change a logit.
//
// Two build modes:
//
//   - QuantExact leaves the weights untouched and keeps only the rows that
//     happen to round-trip. Arbitrary trained float32 weights essentially
//     never land on a 256-point affine grid, so exact coverage is usually
//     ~0 — it is the "do no harm" mode the -quantize flag defaults callers
//     into when they want the invariant without committing to new weights.
//   - QuantSnap first snaps each row's weights onto its own int8 grid
//     (storing exactly the dequantized values back into W), then serves the
//     row as int8. The dequant-equals-W invariant holds by construction, so
//     coverage is total; the model's weights change once, at build time,
//     and float32 and int8 kernels agree bitwise on the snapped weights
//     from then on. This is the mode that actually halves weight traffic.
type quantTensor struct {
	out   int
	q     []int8    // [in*out], row p at q[p*out:(p+1)*out], stored as qi-128
	scale []float32 // [in] per-row scale
	zero  []float32 // [in] per-row zero point (the row minimum)
	ok    []bool    // [in] row round-trips exactly; !ok rows use float32 W
	nOK   int
}

// Quantization modes accepted by Model.Quantize.
const (
	QuantExact = "exact"
	QuantSnap  = "snap"
)

// dequantRow writes row p's columns [j0,j1) into dst. The expression
// matches quantizeRow's verification term exactly, so for an ok row dst
// equals the float32 weights bit-for-bit.
func (t *quantTensor) dequantRow(p, j0, j1 int, dst []float32) {
	s, z := t.scale[p], t.zero[p]
	row := t.q[p*t.out+j0 : p*t.out+j1]
	for i, qv := range row {
		dst[i] = z + s*float32(int32(qv)+128)
	}
}

// quantizeRow encodes one weight row on a 256-point affine grid anchored at
// the row minimum. Reports whether the row is servable from the int8 store
// (exact round-trip), and — in snap mode — whether any weight moved.
func quantizeRow(w []float32, q []int8, scale, zero *float32, snap bool) (ok, moved bool) {
	lo, hi := w[0], w[0]
	for _, v := range w {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return false, false
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	s := (hi - lo) / 255
	if math.IsInf(float64(s), 0) {
		return false, false // the row's span overflows float32
	}
	if s == 0 {
		s = 1 // constant row: every qi is 0 and dequant yields lo exactly
	}
	*scale, *zero = s, lo
	exact := true
	for j, v := range w {
		qi := int(math.Round(float64(v-lo) / float64(s)))
		if qi < 0 {
			qi = 0
		} else if qi > 255 {
			qi = 255
		}
		q[j] = int8(qi - 128)
		dq := lo + s*float32(qi)
		if math.Float32bits(dq) != math.Float32bits(v) {
			if !snap {
				exact = false
			} else {
				w[j] = dq
				moved = true
			}
		}
	}
	if snap {
		return true, moved
	}
	return exact, false
}

func quantizeTensor(w []float32, in, out int, snap bool) (*quantTensor, int) {
	t := &quantTensor{
		out:   out,
		q:     make([]int8, in*out),
		scale: make([]float32, in),
		zero:  make([]float32, in),
		ok:    make([]bool, in),
	}
	snapped := 0
	for p := 0; p < in; p++ {
		ok, moved := quantizeRow(w[p*out:(p+1)*out], t.q[p*out:(p+1)*out], &t.scale[p], &t.zero[p], snap)
		t.ok[p] = ok
		if ok {
			t.nOK++
		}
		if moved {
			snapped++
		}
	}
	return t, snapped
}

// quantLayer mirrors layerParams for the decode-path GEMM weights.
// LayerNorm gains/biases, biases, and the positional table stay float32:
// they are O(D) per token, not worth a format.
type quantLayer struct {
	wq, wk, wv, wo, w1, w2 *quantTensor
}

// modelQuant is the model's int8 weight store.
type modelQuant struct {
	mode    string
	layers  []quantLayer
	tok     *quantTensor // tied LM head rows ([Vocab, D])
	rows    int
	okRows  int
	snapped int
}

// layerTensors returns layer l's quant tensors; all nil on a nil store, so
// call sites need no branching.
func (mq *modelQuant) layerTensors(l int) (wq, wk, wv, wo, w1, w2 *quantTensor) {
	if mq == nil {
		return
	}
	ql := &mq.layers[l]
	return ql.wq, ql.wk, ql.wv, ql.wo, ql.w1, ql.w2
}

func (mq *modelQuant) tokTensor() *quantTensor {
	if mq == nil {
		return nil
	}
	return mq.tok
}

// QuantStats summarizes an int8 weight store build.
type QuantStats struct {
	Mode string // "exact" or "snap"
	// Rows is the total weight-matrix row count across the quantized
	// tensors; Int8Rows of them round-tripped exactly and are served from
	// the int8 store (the rest fall back to float32).
	Rows     int
	Int8Rows int
	// Coverage is Int8Rows/Rows. Snapped counts rows whose weights moved
	// onto the grid (snap mode only).
	Coverage float64
	Snapped  int
}

func (mq *modelQuant) stats() QuantStats {
	st := QuantStats{Mode: mq.mode, Rows: mq.rows, Int8Rows: mq.okRows, Snapped: mq.snapped}
	if mq.rows > 0 {
		st.Coverage = float64(mq.okRows) / float64(mq.rows)
	}
	return st
}

// Quantize builds the model's int8 weight store over the decode-path GEMM
// tensors (attention projections, MLP, tied head) and enables it. mode is
// QuantExact or QuantSnap (see the file comment for the trade). Idempotent:
// once a store exists, further calls — including clones re-applying engine
// config mid-serve — return its stats without touching the weights again,
// even if they name the other mode. The store is runtime state, not trained
// state: Save never serializes it (snap-mode weight changes do persist,
// since they are the weights), and a loaded model starts float32.
func (m *Model) Quantize(mode string) (QuantStats, error) {
	if mode != QuantExact && mode != QuantSnap {
		return QuantStats{}, fmt.Errorf("nn: Quantize mode %q (want %q or %q)", mode, QuantExact, QuantSnap)
	}
	m.quantMu.Lock()
	defer m.quantMu.Unlock()
	if cur := m.quant.Load(); cur != nil {
		return cur.stats(), nil
	}
	d := m.Cfg.Dim
	f := m.Cfg.ff() * d
	snap := mode == QuantSnap
	mq := &modelQuant{mode: mode, layers: make([]quantLayer, len(m.layers))}
	add := func(p *Param, in, out int) *quantTensor {
		t, snapped := quantizeTensor(p.W, in, out, snap)
		mq.rows += in
		mq.okRows += t.nOK
		mq.snapped += snapped
		return t
	}
	for l := range m.layers {
		ly := &m.layers[l]
		mq.layers[l] = quantLayer{
			wq: add(ly.wq, d, d), wk: add(ly.wk, d, d), wv: add(ly.wv, d, d),
			wo: add(ly.wo, d, d), w1: add(ly.w1, d, f), w2: add(ly.w2, f, d),
		}
	}
	mq.tok = add(m.tok, m.Cfg.Vocab, d)
	m.quant.Store(mq)
	m.quantOn.Store(true)
	return mq.stats(), nil
}

// EnableQuant toggles whether the kernels read the int8 store (true after
// Quantize). Reports whether a store exists; without one the call is a
// no-op. The A/B switch the equivalence bench flips to compare int8 and
// float32 kernels over identical weights.
func (m *Model) EnableQuant(on bool) bool {
	if m.quant.Load() == nil {
		return false
	}
	m.quantOn.Store(on)
	return true
}

// QuantEnabled reports whether kernels currently read the int8 store.
func (m *Model) QuantEnabled() bool {
	return m.quantOn.Load() && m.quant.Load() != nil
}

// QuantCoverage returns the fraction of weight-matrix rows served from the
// int8 store (0 without one).
func (m *Model) QuantCoverage() float64 {
	mq := m.quant.Load()
	if mq == nil || mq.rows == 0 {
		return 0
	}
	return float64(mq.okRows) / float64(mq.rows)
}

// QuantInfo returns the store's build stats and whether one exists.
func (m *Model) QuantInfo() (QuantStats, bool) {
	mq := m.quant.Load()
	if mq == nil {
		return QuantStats{}, false
	}
	return mq.stats(), true
}

// activeQuant returns the int8 store if kernels should read it, else nil.
func (m *Model) activeQuant() *modelQuant {
	if !m.quantOn.Load() {
		return nil
	}
	return m.quant.Load()
}

// AppendWeightBytesInt8 is AppendWeightBytes with the int8 store active:
// rows served as int8 stream 1 byte per weight plus 8 bytes of row metadata
// (scale + zero point); fallback rows stream their float32 weights. Equals
// AppendWeightBytes when no store exists.
func (m *Model) AppendWeightBytesInt8() int64 {
	mq := m.quant.Load()
	if mq == nil {
		return m.AppendWeightBytes()
	}
	var n int64
	acc := func(t *quantTensor) {
		in := len(t.ok)
		n += int64(t.nOK)*(int64(t.out)+8) + int64(in-t.nOK)*4*int64(t.out)
	}
	for l := range mq.layers {
		ql := &mq.layers[l]
		for _, t := range []*quantTensor{ql.wq, ql.wk, ql.wv, ql.wo, ql.w1, ql.w2} {
			acc(t)
		}
	}
	acc(mq.tok)
	return n
}
