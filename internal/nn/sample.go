package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Session is an incremental decoding session with a per-layer KV cache.
// Feed tokens with Append; after each Append, Logits returns the next-token
// distribution's logits. Sessions are cheap to create (one per generated
// record) and not safe for concurrent use.
type Session struct {
	m   *Model
	pos int
	// KV cache as a sequence of refcounted pages, PageTokens positions each
	// (head-major within a page; see kvPage). Pages are allocated on demand,
	// so a short record touches ceil(pos/PageTokens) pages, not Ctx rows.
	// Clone shares pages instead of copying them; Append copies a shared
	// partial page before writing into it (copy-on-write). A frozen session
	// (e.g. a prefix-cache snapshot) may be Cloned concurrently — the page
	// refcounts are atomic — but Append/Clone on the *same* session still
	// must not race, per the no-concurrent-use contract above.
	pages  []*kvPage
	logits []float32
	// Append scratch, allocated once per session. The decode hot path calls
	// Append once per emitted character, so per-call make() churn dominated
	// the allocation profile before these were hoisted.
	x, ln, q, k, v, attn, proj, mlp []float32 // [Dim]
	hbuf, hg                        []float32 // [ff*Dim]
	p                               []float32 // [Ctx] attention row, used up to pos+1
	// Kernel-dispatch scratch (dequant staging). Sized at construction, so a
	// session created before Quantize simply decodes from float32 weights.
	sc kernelScratch
}

// NewSession starts an empty decoding session. KV pages are allocated as
// tokens arrive.
func (m *Model) NewSession() *Session {
	s := &Session{m: m, logits: make([]float32, m.Cfg.Vocab)}
	s.initScratch()
	return s
}

// initScratch allocates the per-Append work buffers.
func (s *Session) initScratch() {
	d := s.m.Cfg.Dim
	f := s.m.Cfg.ff() * d
	s.x = make([]float32, d)
	s.ln = make([]float32, d)
	s.q = make([]float32, d)
	s.k = make([]float32, d)
	s.v = make([]float32, d)
	s.attn = make([]float32, d)
	s.proj = make([]float32, d)
	s.mlp = make([]float32, d)
	s.hbuf = make([]float32, f)
	s.hg = make([]float32, f)
	s.p = make([]float32, s.m.Cfg.Ctx)
	if s.m.quant.Load() != nil {
		s.sc.dq = make([][]float32, s.m.KernelWorkers())
		for i := range s.sc.dq {
			s.sc.dq[i] = make([]float32, 12*f)
		}
	}
}

// Len reports the number of tokens consumed.
func (s *Session) Len() int { return s.pos }

// Append feeds one token and computes the logits for the following position.
func (s *Session) Append(tok int) error {
	m := s.m
	if tok < 0 || tok >= m.Cfg.Vocab {
		return fmt.Errorf("nn: token %d outside vocab %d", tok, m.Cfg.Vocab)
	}
	if s.pos >= m.Cfg.Ctx {
		return fmt.Errorf("nn: context length %d exceeded", m.Cfg.Ctx)
	}
	d := m.Cfg.Dim
	f := m.Cfg.ff() * d
	h := m.Cfg.Heads
	dh := d / h
	scale := float32(1 / math.Sqrt(float64(dh)))
	t := s.pos

	// Land position t on its page, allocating or copy-on-writing as needed.
	// A shared page (refs > 1) is immutable: copy the filled prefix into a
	// private page before scattering this position's k/v into it.
	pg, u := t/PageTokens, t%PageTokens
	if pg == len(s.pages) {
		s.pages = append(s.pages, newKVPage(m))
	} else if s.pages[pg].refs.Load() > 1 {
		fresh := s.pages[pg].copyPrefix(m, u)
		s.pages[pg].release()
		s.pages[pg] = fresh
	}
	page := s.pages[pg]

	x := s.x
	copy(x, m.tok.W[tok*d:(tok+1)*d])
	pos := m.pos.W[t*d : (t+1)*d]
	for j := range x {
		x[j] += pos[j]
	}

	ln, q, k, v, attn := s.ln, s.q, s.k, s.v, s.attn
	hbuf, hg := s.hbuf, s.hg
	mq := m.activeQuant()
	for l := range m.layers {
		ly := &m.layers[l]
		tensor.LayerNormRow(ln, x, ly.ln1g.W, ly.ln1b.W)

		// Project q/k/v in one fused pass over the layer-norm row.
		tq, tk, tv, two, tw1, tw2 := mq.layerTensors(l)
		m.gemm3(q, k, v, ln, ly.wq.W, ly.wk.W, ly.wv.W, ly.bq.W, ly.bk.W, ly.bv.W, tq, tk, tv, d, d, 1, &s.sc)

		// Scatter this position's k/v into its page, head-major.
		kp, vp := page.k[l], page.v[l]
		for hd := 0; hd < h; hd++ {
			dst := (hd*PageTokens + u) * dh
			copy(kp[dst:dst+dh], k[hd*dh:(hd+1)*dh])
			copy(vp[dst:dst+dh], v[hd*dh:(hd+1)*dh])
		}

		// Attend over the cache (positions 0..t); per head, the history is
		// walked page by page in position order, so the score row (and the
		// softmax and value accumulation after it) sees the exact FP sequence
		// of the old contiguous layout.
		for i := range attn {
			attn[i] = 0
		}
		for hd := 0; hd < h; hd++ {
			off := hd * dh
			qh := q[off : off+dh]
			hoff := hd * PageTokens * dh
			p := s.p[:t+1]
			j := 0
			for pi := 0; j <= t; pi++ {
				kh := s.pages[pi].k[l][hoff:]
				n := t + 1 - pi*PageTokens
				if n > PageTokens {
					n = PageTokens
				}
				for w := 0; w < n; w++ {
					p[j] = tensor.Dot(qh, kh[w*dh:w*dh+dh]) * scale
					j++
				}
			}
			tensor.SoftmaxRow(p)
			out := attn[off : off+dh]
			j = 0
			for pi := 0; j <= t; pi++ {
				vh := s.pages[pi].v[l][hoff:]
				n := t + 1 - pi*PageTokens
				if n > PageTokens {
					n = PageTokens
				}
				for w := 0; w < n; w++ {
					tensor.Axpy(out, p[j], vh[w*dh:w*dh+dh])
					j++
				}
			}
		}

		proj := s.proj
		m.gemm(proj, attn, ly.wo.W, ly.bo.W, two, d, d, 1, &s.sc)
		for j := range x {
			x[j] += proj[j]
		}

		tensor.LayerNormRow(ln, x, ly.ln2g.W, ly.ln2b.W)
		m.gemm(hbuf, ln, ly.w1.W, ly.b1.W, tw1, d, f, 1, &s.sc)
		tensor.GELU(hg, hbuf)
		mlp := s.mlp
		m.gemm(mlp, hg, ly.w2.W, ly.b2.W, tw2, f, d, 1, &s.sc)
		for j := range x {
			x[j] += mlp[j]
		}
	}

	tensor.LayerNormRow(ln, x, m.lnfg.W, m.lnfb.W)
	// Tied head: logits[v] = ⟨ln, tok_v⟩, vocab-sharded across the worker
	// group when the dispatch is worth it.
	m.headLogits(s.logits, ln, nil, 1, &s.sc)
	s.pos++
	return nil
}

// Logits returns the next-token logits after the last Append. The returned
// slice is owned by the session and overwritten by the next Append; callers
// that mask it in place (LeJIT does) should copy first if they need the raw
// values later.
func (s *Session) Logits() []float32 {
	if s.pos == 0 {
		panic("nn: Logits before any Append")
	}
	return s.logits
}

// Rewind truncates the session back to pos consumed tokens and restores the
// pending logits to the caller-supplied snapshot (a copy taken when the
// session was at pos). Whole pages beyond the kept prefix are released; a
// kept partial boundary page may still hold stale tail positions, but
// attention only ever reads positions ≤ the current length, and the next
// Append overwrites the stale slot (copy-on-write if the page is shared).
// The logits are copied into the session's fixed buffer, so a caller holding
// the Logits() slice sees the restored values in place. This is the cheap
// per-lane checkpoint restore speculative decoding needs (DESIGN.md §13).
func (s *Session) Rewind(pos int, logits []float32) error {
	if pos < 0 || pos > s.pos {
		return fmt.Errorf("nn: Rewind(%d) outside [0,%d]", pos, s.pos)
	}
	if len(logits) != len(s.logits) {
		return fmt.Errorf("nn: Rewind logits length %d, want %d", len(logits), len(s.logits))
	}
	keep := (pos + PageTokens - 1) / PageTokens
	for i := keep; i < len(s.pages); i++ {
		s.pages[i].release()
		s.pages[i] = nil
	}
	s.pages = s.pages[:keep]
	s.pos = pos
	copy(s.logits, logits)
	return nil
}

// Clone returns an independent copy of the session: same consumed prefix,
// same pending logits, its own view of the KV cache. Used by beam-search
// decoding (beams share a prefix and then diverge) and by the prefix cache
// to hand a frozen snapshot to a new request. No KV floats are copied here —
// the clone shares the pages by reference and Append copy-on-writes the
// shared partial page when either side next advances, so a clone costs
// O(pages) pointer work plus one logits row.
func (s *Session) Clone() *Session {
	c := &Session{m: s.m, pos: s.pos, logits: append([]float32(nil), s.logits...)}
	c.pages = append([]*kvPage(nil), s.pages...)
	for _, p := range c.pages {
		p.retain()
	}
	// Fresh scratch: the buffers hold no state between Appends, but sharing
	// them would race when clones decode concurrently.
	c.initScratch()
	return c
}

// Release drops the session's references to its KV pages so pages it shared
// (with clones or the prefix cache) stop counting it toward copy-on-write.
// The session must not be used afterwards. Release is optional: a session
// collected without it merely leaves its refs behind, which can only cause
// a spurious page copy elsewhere, never corruption.
func (s *Session) Release() {
	for _, p := range s.pages {
		p.release()
	}
	s.pages = nil
}

// KVBytes reports the heap bytes of KV cache reachable from this session
// (pages × page size), counting shared pages in full. The prefix cache uses
// this for its resident-bytes accounting.
func (s *Session) KVBytes() int64 {
	return int64(len(s.pages)) * pageBytes(s.m)
}

// vecLinear computes y = x·W + b for a single row x (len in), W [in, out].
// Four input rows are folded per pass; each y[j] still accumulates strictly
// in ascending input order (separate adds, one accumulator), so the result
// is bit-identical to the scalar loop. The old per-input zero test is gone:
// layer-norm output is essentially never zero, so the branch only cost.
func vecLinear(y, x, w, b []float32, in, out int) {
	y = y[:out]
	copy(y, b[:out])
	p := 0
	for ; p+4 <= in; p += 4 {
		x0, x1, x2, x3 := x[p], x[p+1], x[p+2], x[p+3]
		base := p * out
		r0 := w[base : base+out]
		r1 := w[base+out : base+2*out]
		r2 := w[base+2*out : base+3*out]
		r3 := w[base+3*out : base+4*out]
		for j := range y {
			a := y[j]
			a += x0 * r0[j]
			a += x1 * r1[j]
			a += x2 * r2[j]
			a += x3 * r3[j]
			y[j] = a
		}
	}
	for ; p < in; p++ {
		xv := x[p]
		row := w[p*out : (p+1)*out]
		for j := range y {
			y[j] += xv * row[j]
		}
	}
}

// accumBlock4 folds four input rows (w, a 4-row block at the given row
// stride) into y with one accumulator per element and adds in ascending
// input order — the FP operation sequence of four scalar passes. Factored
// out so each projection's inner loop gets its own register allocation
// scope; with the three loops inlined into one function body the live slice
// headers spill and the fused projection ran ~50% slower than three
// separate ones. The bounds are len(y) past each row start (not stride
// multiples) so a column-range caller (matLinearCols with j0 > 0) stays in
// bounds on the weight matrix's last 4-row block.
func accumBlock4(y, w []float32, stride int, x0, x1, x2, x3 float32) {
	n := len(y)
	r0 := w[:n]
	r1 := w[stride : stride+n]
	r2 := w[2*stride : 2*stride+n]
	r3 := w[3*stride : 3*stride+n]
	for j := range y {
		a := y[j]
		a += x0 * r0[j]
		a += x1 * r1[j]
		a += x2 * r2[j]
		a += x3 * r3[j]
		y[j] = a
	}
}

// vecLinear3 fuses the three attention projections sharing one input row:
// q = x·Wq + bq, k = x·Wk + bk, v = x·Wv + bv. The input row is traversed
// once, in blocks of four; within a block each projection accumulates with
// the same 4-wide order-preserving pattern as vecLinear, so all three
// outputs are bit-identical to three separate calls.
func vecLinear3(q, k, v, x, wq, wk, wv, bq, bk, bv []float32, in, out int) {
	q, k, v = q[:out], k[:out], v[:out]
	copy(q, bq[:out])
	copy(k, bk[:out])
	copy(v, bv[:out])
	p := 0
	for ; p+4 <= in; p += 4 {
		base := p * out
		x0, x1, x2, x3 := x[p], x[p+1], x[p+2], x[p+3]
		accumBlock4(q, wq[base:base+4*out], out, x0, x1, x2, x3)
		accumBlock4(k, wk[base:base+4*out], out, x0, x1, x2, x3)
		accumBlock4(v, wv[base:base+4*out], out, x0, x1, x2, x3)
	}
	for ; p < in; p++ {
		xv := x[p]
		rq := wq[p*out : (p+1)*out]
		rk := wk[p*out : (p+1)*out]
		rv := wv[p*out : (p+1)*out]
		for j := range q {
			q[j] += xv * rq[j]
			k[j] += xv * rk[j]
			v[j] += xv * rv[j]
		}
	}
}
