package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Session is an incremental decoding session with a per-layer KV cache.
// Feed tokens with Append; after each Append, Logits returns the next-token
// distribution's logits. Sessions are cheap to create (one per generated
// record) and not safe for concurrent use.
type Session struct {
	m   *Model
	pos int
	// per-layer key/value caches, [Ctx, D] each, filled up to pos.
	ks, vs []*tensor.Mat
	logits []float32
	// Append scratch, allocated once per session. The decode hot path calls
	// Append once per emitted character, so per-call make() churn dominated
	// the allocation profile before these were hoisted.
	x, ln, q, attn, proj, mlp []float32 // [Dim]
	hbuf, hg                  []float32 // [ff*Dim]
	p                         []float32 // [Ctx] attention row, used up to pos+1
}

// NewSession starts an empty decoding session.
func (m *Model) NewSession() *Session {
	s := &Session{m: m, logits: make([]float32, m.Cfg.Vocab)}
	s.ks = make([]*tensor.Mat, m.Cfg.Layers)
	s.vs = make([]*tensor.Mat, m.Cfg.Layers)
	for l := range s.ks {
		s.ks[l] = tensor.NewMat(m.Cfg.Ctx, m.Cfg.Dim)
		s.vs[l] = tensor.NewMat(m.Cfg.Ctx, m.Cfg.Dim)
	}
	s.initScratch()
	return s
}

// initScratch allocates the per-Append work buffers.
func (s *Session) initScratch() {
	d := s.m.Cfg.Dim
	f := s.m.Cfg.ff() * d
	s.x = make([]float32, d)
	s.ln = make([]float32, d)
	s.q = make([]float32, d)
	s.attn = make([]float32, d)
	s.proj = make([]float32, d)
	s.mlp = make([]float32, d)
	s.hbuf = make([]float32, f)
	s.hg = make([]float32, f)
	s.p = make([]float32, s.m.Cfg.Ctx)
}

// Len reports the number of tokens consumed.
func (s *Session) Len() int { return s.pos }

// Append feeds one token and computes the logits for the following position.
func (s *Session) Append(tok int) error {
	m := s.m
	if tok < 0 || tok >= m.Cfg.Vocab {
		return fmt.Errorf("nn: token %d outside vocab %d", tok, m.Cfg.Vocab)
	}
	if s.pos >= m.Cfg.Ctx {
		return fmt.Errorf("nn: context length %d exceeded", m.Cfg.Ctx)
	}
	d := m.Cfg.Dim
	f := m.Cfg.ff() * d
	h := m.Cfg.Heads
	dh := d / h
	scale := float32(1 / math.Sqrt(float64(dh)))
	t := s.pos

	x := s.x
	copy(x, m.tok.W[tok*d:(tok+1)*d])
	pos := m.pos.W[t*d : (t+1)*d]
	for j := range x {
		x[j] += pos[j]
	}

	ln, q, attn := s.ln, s.q, s.attn
	hbuf, hg := s.hbuf, s.hg
	for l := range m.layers {
		ly := &m.layers[l]
		tensor.LayerNormRow(ln, x, ly.ln1g.W, ly.ln1b.W)

		// Project q for this token; write k/v straight into the cache.
		krow := s.ks[l].Row(t)
		vrow := s.vs[l].Row(t)
		vecLinear(q, ln, ly.wq.W, ly.bq.W, d, d)
		vecLinear(krow, ln, ly.wk.W, ly.bk.W, d, d)
		vecLinear(vrow, ln, ly.wv.W, ly.bv.W, d, d)

		// Attend over the cache (positions 0..t).
		for i := range attn {
			attn[i] = 0
		}
		for hd := 0; hd < h; hd++ {
			off := hd * dh
			qh := q[off : off+dh]
			p := s.p[:t+1]
			for j := 0; j <= t; j++ {
				p[j] = tensor.Dot(qh, s.ks[l].Row(j)[off:off+dh]) * scale
			}
			tensor.SoftmaxRow(p)
			out := attn[off : off+dh]
			for j := 0; j <= t; j++ {
				tensor.Axpy(out, p[j], s.vs[l].Row(j)[off:off+dh])
			}
		}

		proj := s.proj
		vecLinear(proj, attn, ly.wo.W, ly.bo.W, d, d)
		for j := range x {
			x[j] += proj[j]
		}

		tensor.LayerNormRow(ln, x, ly.ln2g.W, ly.ln2b.W)
		vecLinear(hbuf, ln, ly.w1.W, ly.b1.W, d, f)
		tensor.GELU(hg, hbuf)
		mlp := s.mlp
		vecLinear(mlp, hg, ly.w2.W, ly.b2.W, f, d)
		for j := range x {
			x[j] += mlp[j]
		}
	}

	tensor.LayerNormRow(ln, x, m.lnfg.W, m.lnfb.W)
	// Tied head: logits[v] = ⟨ln, tok_v⟩.
	for v := 0; v < m.Cfg.Vocab; v++ {
		s.logits[v] = tensor.Dot(ln, m.tok.W[v*d:(v+1)*d])
	}
	s.pos++
	return nil
}

// Logits returns the next-token logits after the last Append. The returned
// slice is owned by the session and overwritten by the next Append; callers
// that mask it in place (LeJIT does) should copy first if they need the raw
// values later.
func (s *Session) Logits() []float32 {
	if s.pos == 0 {
		panic("nn: Logits before any Append")
	}
	return s.logits
}

// Clone returns an independent copy of the session: same consumed prefix,
// same pending logits, separate KV cache. Used by beam-search decoding,
// where beams share a prefix and then diverge.
func (s *Session) Clone() *Session {
	c := &Session{m: s.m, pos: s.pos, logits: append([]float32(nil), s.logits...)}
	c.ks = make([]*tensor.Mat, len(s.ks))
	c.vs = make([]*tensor.Mat, len(s.vs))
	for l := range s.ks {
		c.ks[l] = s.ks[l].Clone()
		c.vs[l] = s.vs[l].Clone()
	}
	// Fresh scratch: the buffers hold no state between Appends, but sharing
	// them would race when clones decode concurrently.
	c.initScratch()
	return c
}

// vecLinear computes y = x·W + b for a single row x (len in), W [in, out].
func vecLinear(y, x, w, b []float32, in, out int) {
	copy(y, b[:out])
	for p := 0; p < in; p++ {
		xv := x[p]
		if xv == 0 {
			continue
		}
		row := w[p*out : (p+1)*out]
		for j := 0; j < out; j++ {
			y[j] += xv * row[j]
		}
	}
}
