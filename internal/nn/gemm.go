package nn

import "repro/internal/tensor"

// This file holds the column-range GEMM kernels and the dispatchers that
// shard them across the kernel worker group (parallel.go). matLinearCols
// computes output columns [j0,j1) for every lane; matLinear and matLinear3
// in batch.go are the j0=0,j1=out serial case. Each output element has one
// accumulator fed in ascending input-row order regardless of [j0,j1), so
// any column partition — and therefore any worker count — produces
// bit-identical float32 results.
//
// The kernels optionally read the int8 weight store (quant.go): weight rows
// with an exact dequant round-trip are staged through a per-block dq
// scratch (dequantized 1 byte/weight instead of streaming 4), fallback rows
// come straight from W. Staged or not, the floats entering the multiply are
// bit-identical, so the quant path is exact by construction.

// weightBlock4 returns the 4-row weight block starting at input row p,
// restricted to columns [j0,j1), plus its row stride. Float path: a direct
// view into w (stride out). Quant path: the rows are staged packed into dq
// (stride j1-j0), dequantizing servable rows and copying fallback rows.
func weightBlock4(w []float32, qt *quantTensor, p, out, j0, j1 int, dq []float32) ([]float32, int) {
	if qt == nil || !(qt.ok[p] || qt.ok[p+1] || qt.ok[p+2] || qt.ok[p+3]) {
		return w[p*out+j0:], out
	}
	cols := j1 - j0
	blk := dq[:4*cols]
	for i := 0; i < 4; i++ {
		dst := blk[i*cols : (i+1)*cols]
		if qt.ok[p+i] {
			qt.dequantRow(p+i, j0, j1, dst)
		} else {
			copy(dst, w[(p+i)*out+j0:(p+i)*out+j1])
		}
	}
	return blk, cols
}

// weightRow returns input row p's weights over columns [j0,j1), staging
// through dq when the row is served from the int8 store.
func weightRow(w []float32, qt *quantTensor, p, out, j0, j1 int, dq []float32) []float32 {
	if qt == nil || !qt.ok[p] {
		return w[p*out+j0 : p*out+j1]
	}
	dst := dq[:j1-j0]
	qt.dequantRow(p, j0, j1, dst)
	return dst
}

// matLinearCols computes columns [j0,j1) of Y = X·W + b for X [rows, in],
// Y [rows, out], both compacted row-major. Loop order matches matLinear
// (weight block outer, lane inner) and the per-element accumulation order
// matches vecLinear exactly, so the full-range call is bit-identical to the
// pre-sharding kernel and any column partition composes to the same result.
func matLinearCols(y, x, w, b []float32, qt *quantTensor, in, out, rows, j0, j1 int, dq []float32) {
	for r := 0; r < rows; r++ {
		copy(y[r*out+j0:r*out+j1], b[j0:j1])
	}
	p := 0
	for ; p+4 <= in; p += 4 {
		blk, stride := weightBlock4(w, qt, p, out, j0, j1, dq)
		for r := 0; r < rows; r++ {
			xr := x[r*in:]
			accumBlock4(y[r*out+j0:r*out+j1], blk, stride, xr[p], xr[p+1], xr[p+2], xr[p+3])
		}
	}
	for ; p < in; p++ {
		row := weightRow(w, qt, p, out, j0, j1, dq)
		for r := 0; r < rows; r++ {
			xv := x[r*in+p]
			yr := y[r*out+j0 : r*out+j1]
			for j := range yr {
				yr[j] += xv * row[j]
			}
		}
	}
}

// matLinear3Cols computes columns [j0,j1) of the three fused attention
// projections for all lanes (the column-range form of matLinear3). dq must
// hold 12·(j1-j0) floats: one 4-row staging block per projection, live
// simultaneously because the lane loop folds all three per weight block.
func matLinear3Cols(q, k, v, x, wq, wk, wv, bq, bk, bv []float32, tq, tk, tv *quantTensor, in, out, rows, j0, j1 int, dq []float32) {
	for r := 0; r < rows; r++ {
		copy(q[r*out+j0:r*out+j1], bq[j0:j1])
		copy(k[r*out+j0:r*out+j1], bk[j0:j1])
		copy(v[r*out+j0:r*out+j1], bv[j0:j1])
	}
	cols := j1 - j0
	var dqQ, dqK, dqV []float32
	if dq != nil {
		dqQ, dqK, dqV = dq[:4*cols], dq[4*cols:8*cols], dq[8*cols:12*cols]
	}
	p := 0
	for ; p+4 <= in; p += 4 {
		bq4, sq := weightBlock4(wq, tq, p, out, j0, j1, dqQ)
		bk4, sk := weightBlock4(wk, tk, p, out, j0, j1, dqK)
		bv4, sv := weightBlock4(wv, tv, p, out, j0, j1, dqV)
		for r := 0; r < rows; r++ {
			xr := x[r*in:]
			x0, x1, x2, x3 := xr[p], xr[p+1], xr[p+2], xr[p+3]
			accumBlock4(q[r*out+j0:r*out+j1], bq4, sq, x0, x1, x2, x3)
			accumBlock4(k[r*out+j0:r*out+j1], bk4, sk, x0, x1, x2, x3)
			accumBlock4(v[r*out+j0:r*out+j1], bv4, sv, x0, x1, x2, x3)
		}
	}
	for ; p < in; p++ {
		rq := weightRow(wq, tq, p, out, j0, j1, dqQ)
		rk := weightRow(wk, tk, p, out, j0, j1, dqK)
		rv := weightRow(wv, tv, p, out, j0, j1, dqV)
		for r := 0; r < rows; r++ {
			xv := x[r*in+p]
			qr := q[r*out+j0 : r*out+j1]
			kr := k[r*out+j0 : r*out+j1]
			vr := v[r*out+j0 : r*out+j1]
			for j := range qr {
				qr[j] += xv * rq[j]
				kr[j] += xv * rk[j]
				vr[j] += xv * rv[j]
			}
		}
	}
}

// gemm dispatches one Y = X·W + b call: serial below the threshold,
// column-sharded across the worker group above it. qt is the tensor's int8
// form (nil = float32); it is ignored when the session's scratch has no dq
// slabs (sc predates the store), which only skips the bandwidth win — the
// dequantized and original weights are bit-identical either way.
func (m *Model) gemm(y, x, w, b []float32, qt *quantTensor, in, out, rows int, sc *kernelScratch) {
	if len(sc.dq) == 0 {
		qt = nil
	}
	maxBlocks := int(^uint(0) >> 1)
	if qt != nil {
		maxBlocks = len(sc.dq)
	}
	pool, blocks := m.kernelBlocks(rows*in*out, out, minGemmCols, maxBlocks)
	if blocks <= 1 {
		var dq []float32
		if qt != nil {
			dq = sc.dq[0]
		}
		matLinearCols(y, x, w, b, qt, in, out, rows, 0, out, dq)
		m.serialOps.Add(1)
		return
	}
	m.parallelOps.Add(1)
	pool.parallelFor(blocks, func(bi int) {
		var dq []float32
		if qt != nil {
			dq = sc.dq[bi]
		}
		matLinearCols(y, x, w, b, qt, in, out, rows, bi*out/blocks, (bi+1)*out/blocks, dq)
	})
}

// gemm3 dispatches the fused q/k/v projection the same way as gemm.
func (m *Model) gemm3(q, k, v, x, wq, wk, wv, bq, bk, bv []float32, tq, tk, tv *quantTensor, in, out, rows int, sc *kernelScratch) {
	if len(sc.dq) == 0 {
		tq, tk, tv = nil, nil, nil
	}
	maxBlocks := int(^uint(0) >> 1)
	if tq != nil || tk != nil || tv != nil {
		maxBlocks = len(sc.dq)
	}
	pool, blocks := m.kernelBlocks(3*rows*in*out, out, minGemmCols, maxBlocks)
	if blocks <= 1 {
		var dq []float32
		if len(sc.dq) > 0 {
			dq = sc.dq[0]
		}
		matLinear3Cols(q, k, v, x, wq, wk, wv, bq, bk, bv, tq, tk, tv, in, out, rows, 0, out, dq)
		m.serialOps.Add(1)
		return
	}
	m.parallelOps.Add(1)
	pool.parallelFor(blocks, func(bi int) {
		var dq []float32
		if len(sc.dq) > 0 {
			dq = sc.dq[bi]
		}
		matLinear3Cols(q, k, v, x, wq, wk, wv, bq, bk, bv, tq, tk, tv, in, out, rows, bi*out/blocks, (bi+1)*out/blocks, dq)
	})
}

// headLogits computes the tied-head logits for rows final layer-norm rows,
// sharding the vocabulary across the worker group. lanes maps compacted row
// r to its logits row (nil = identity, the solo path); per (lane, v) the
// value is the same ⟨ln_r, tok_v⟩ Dot as the serial head, so partitioning
// the vocab changes nothing bit-wise.
func (m *Model) headLogits(logits, ln []float32, lanes []int, rows int, sc *kernelScratch) {
	d := m.Cfg.Dim
	vocab := m.Cfg.Vocab
	qt := m.activeQuant().tokTensor()
	if len(sc.dq) == 0 {
		qt = nil
	}
	maxBlocks := int(^uint(0) >> 1)
	if qt != nil {
		maxBlocks = len(sc.dq)
	}
	pool, blocks := m.kernelBlocks(rows*vocab*d, vocab, minGemmCols, maxBlocks)
	if blocks <= 1 {
		var dq []float32
		if qt != nil {
			dq = sc.dq[0]
		}
		headLogitsRange(logits, ln, m.tok.W, lanes, qt, d, vocab, rows, 0, vocab, dq)
		m.serialOps.Add(1)
		return
	}
	m.parallelOps.Add(1)
	pool.parallelFor(blocks, func(bi int) {
		var dq []float32
		if qt != nil {
			dq = sc.dq[bi]
		}
		headLogitsRange(logits, ln, m.tok.W, lanes, qt, d, vocab, rows, bi*vocab/blocks, (bi+1)*vocab/blocks, dq)
	})
}

// headLogitsRange fills logits for vocabulary rows [v0,v1). A plain
// function (not a closure over headLogits' locals) so the serial hot path
// stays allocation-free.
func headLogitsRange(logits, ln, tokW []float32, lanes []int, qt *quantTensor, d, vocab, rows, v0, v1 int, dq []float32) {
	for vv := v0; vv < v1; vv++ {
		wv := weightRow(tokW, qt, vv, d, 0, d, dq)
		for r := 0; r < rows; r++ {
			dst := r
			if lanes != nil {
				dst = lanes[r]
			}
			logits[dst*vocab+vv] = tensor.Dot(ln[r*d:(r+1)*d], wv)
		}
	}
}
