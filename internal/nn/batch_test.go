package nn

import (
	"errors"
	"math"
	"math/rand"
	"strconv"
	"testing"
)

// This file pins the lock-step GEMM path to the single-row Session: for any
// batch composition — ragged starts, ragged finishes, lanes skipping steps —
// every lane's logits must be bit-identical to a solo Session fed the same
// tokens. The matLinear/matLinear3 kernels preserve vecLinear's per-row
// accumulation order exactly, so identical bits are the contract.

// laneSchedule fixes, per lane, the token sequence it will consume.
func laneSchedule(rng *rand.Rand, lanes, minLen, maxLen, vocab int) [][]int {
	seqs := make([][]int, lanes)
	for i := range seqs {
		seqs[i] = randSeq(rng, minLen+rng.Intn(maxLen-minLen+1), vocab)
	}
	return seqs
}

// runLockStepVsSolo drives a BatchSession and per-lane solo Sessions over
// the same schedule, comparing logits bit-for-bit after every step.
func runLockStepVsSolo(t *testing.T, m *Model, seqs [][]int, rng *rand.Rand) {
	t.Helper()
	bs := m.NewBatchSession(len(seqs))
	solo := make([]*Session, len(seqs))
	fed := make([]int, len(seqs))
	for i := range solo {
		solo[i] = m.NewSession()
	}
	lanes := make([]int, 0, len(seqs))
	toks := make([]int, 0, len(seqs))
	for {
		lanes, toks = lanes[:0], toks[:0]
		for i, seq := range seqs {
			if fed[i] >= len(seq) {
				continue
			}
			// Lanes advance raggedly: each occasionally sits a step out.
			if len(seqs) > 1 && rng.Intn(4) == 0 {
				continue
			}
			lanes = append(lanes, i)
			toks = append(toks, seq[fed[i]])
		}
		if len(lanes) == 0 {
			allDone := true
			for i, seq := range seqs {
				if fed[i] < len(seq) {
					allDone = false
				}
			}
			if allDone {
				return
			}
			continue
		}
		if err := bs.AppendBatch(lanes, toks); err != nil {
			t.Fatal(err)
		}
		for j, lane := range lanes {
			if err := solo[lane].Append(toks[j]); err != nil {
				t.Fatal(err)
			}
			fed[lane]++
			compareLogitsBits(t, bs.Logits(lane), solo[lane].Logits(), "lane logits")
			if bs.Len(lane) != solo[lane].Len() {
				t.Fatalf("lane %d: batch len %d, solo len %d", lane, bs.Len(lane), solo[lane].Len())
			}
		}
	}
}

// TestBatchSessionMatchesSingle is the tentpole's golden contract across
// several shapes (including dims not divisible by the 4-wide unroll) and
// ragged schedules where lanes start, skip, and finish at different steps.
func TestBatchSessionMatchesSingle(t *testing.T) {
	cfgs := []Config{
		{Vocab: 11, Ctx: 8, Dim: 8, Heads: 2, Layers: 2},
		{Vocab: 13, Ctx: 16, Dim: 24, Heads: 4, Layers: 3},
		{Vocab: 11, Ctx: 12, Dim: 6, Heads: 3, Layers: 2}, // dh=2, tail-heavy
	}
	for ci, cfg := range cfgs {
		m := goldenModel(t, cfg, int64(200+ci))
		rng := rand.New(rand.NewSource(int64(31 + ci)))
		for _, lanes := range []int{1, 3, 5} {
			seqs := laneSchedule(rng, lanes, 1, cfg.Ctx, cfg.Vocab)
			runLockStepVsSolo(t, m, seqs, rng)
		}
	}
}

// TestCloneLaneMatchesSingle peels one lane off a batch mid-decode and
// requires the resulting Session to keep producing bit-identical logits.
func TestCloneLaneMatchesSingle(t *testing.T) {
	cfg := Config{Vocab: 13, Ctx: 16, Dim: 24, Heads: 4, Layers: 3}
	m := goldenModel(t, cfg, 51)
	rng := rand.New(rand.NewSource(52))

	bs := m.NewBatchSession(3)
	solo := make([]*Session, 3)
	for i := range solo {
		solo[i] = m.NewSession()
	}
	prefix := randSeq(rng, 6, cfg.Vocab)
	for _, tok := range prefix {
		if err := bs.AppendBatch([]int{0, 1, 2}, []int{tok, tok, tok}); err != nil {
			t.Fatal(err)
		}
		for _, s := range solo {
			if err := s.Append(tok); err != nil {
				t.Fatal(err)
			}
		}
	}
	peeled := bs.CloneLane(1)
	soloFork := solo[1].Clone()
	compareLogitsBits(t, peeled.Logits(), soloFork.Logits(), "peeled logits at fork")
	for _, tok := range randSeq(rng, cfg.Ctx-len(prefix), cfg.Vocab) {
		if err := peeled.Append(tok); err != nil {
			t.Fatal(err)
		}
		if err := soloFork.Append(tok); err != nil {
			t.Fatal(err)
		}
		compareLogitsBits(t, peeled.Logits(), soloFork.Logits(), "peeled suffix")
	}
	// The batch must be untouched by the peeled lane's appends.
	if err := bs.AppendBatch([]int{0, 1, 2}, []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	for i, s := range solo {
		if err := s.Append(i + 1); err != nil {
			t.Fatal(err)
		}
		compareLogitsBits(t, bs.Logits(i), s.Logits(), "batch after peel")
	}
}

// TestAppendBatchValidation: an invalid lane must fail with a *LaneError
// naming it and leave the whole batch unmutated (positions and logits).
func TestAppendBatchValidation(t *testing.T) {
	cfg := Config{Vocab: 11, Ctx: 4, Dim: 8, Heads: 2, Layers: 2}
	m := goldenModel(t, cfg, 61)
	bs := m.NewBatchSession(2)
	if err := bs.AppendBatch([]int{0, 1}, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	want0 := append([]float32(nil), bs.Logits(0)...)

	cases := []struct {
		name  string
		lanes []int
		toks  []int
		lane  int
	}{
		{"bad token", []int{0, 1}, []int{3, cfg.Vocab}, 1},
		{"bad lane", []int{0, 7}, []int{3, 3}, 7},
		{"duplicate lane", []int{0, 0}, []int{3, 3}, 0},
	}
	for _, tc := range cases {
		var le *LaneError
		err := bs.AppendBatch(tc.lanes, tc.toks)
		if !errors.As(err, &le) {
			t.Fatalf("%s: err = %v, want *LaneError", tc.name, err)
		}
		if le.Lane != tc.lane {
			t.Errorf("%s: LaneError.Lane = %d, want %d", tc.name, le.Lane, tc.lane)
		}
		if bs.Len(0) != 1 || bs.Len(1) != 1 {
			t.Fatalf("%s: lane positions mutated: %d, %d", tc.name, bs.Len(0), bs.Len(1))
		}
		compareLogitsBits(t, bs.Logits(0), want0, tc.name+" logits")
	}

	// Context overflow on one lane: the other lane's retry must succeed.
	for bs.Len(0) < cfg.Ctx {
		if err := bs.AppendBatch([]int{0}, []int{1}); err != nil {
			t.Fatal(err)
		}
	}
	var le *LaneError
	if err := bs.AppendBatch([]int{0, 1}, []int{1, 1}); !errors.As(err, &le) || le.Lane != 0 {
		t.Fatalf("overflow: err = %v, want *LaneError on lane 0", le)
	}
	if err := bs.AppendBatch([]int{1}, []int{1}); err != nil {
		t.Fatalf("retry without the overflowed lane: %v", err)
	}
}

// TestMatLinearMatchesVecLinear fuzzes the GEMM kernels row-by-row against
// the single-row kernels across shapes exercising every tail residue.
func TestMatLinearMatchesVecLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	fill := func(n int) []float32 {
		s := make([]float32, n)
		for i := range s {
			s[i] = float32(rng.NormFloat64())
		}
		return s
	}
	for trial := 0; trial < 50; trial++ {
		in := 1 + rng.Intn(33)
		out := 1 + rng.Intn(33)
		rows := 1 + rng.Intn(6)
		x, b := fill(rows*in), fill(out)
		wq, wk, wv := fill(in*out), fill(in*out), fill(in*out)

		y := make([]float32, rows*out)
		matLinear(y, x, wq, b, in, out, rows)
		q := make([]float32, rows*out)
		k := make([]float32, rows*out)
		v := make([]float32, rows*out)
		matLinear3(q, k, v, x, wq, wk, wv, b, b, b, in, out, rows)

		wantY := make([]float32, out)
		wantQ, wantK, wantV := make([]float32, out), make([]float32, out), make([]float32, out)
		for r := 0; r < rows; r++ {
			xr := x[r*in : (r+1)*in]
			vecLinear(wantY, xr, wq, b, in, out)
			vecLinear3(wantQ, wantK, wantV, xr, wq, wk, wv, b, b, b, in, out)
			for j := 0; j < out; j++ {
				if math.Float32bits(y[r*out+j]) != math.Float32bits(wantY[j]) {
					t.Fatalf("matLinear rows=%d in=%d out=%d r=%d j=%d: got %v, want %v",
						rows, in, out, r, j, y[r*out+j], wantY[j])
				}
				if q[r*out+j] != wantQ[j] || k[r*out+j] != wantK[j] || v[r*out+j] != wantV[j] {
					t.Fatalf("matLinear3 rows=%d in=%d out=%d r=%d j=%d: q %v/%v k %v/%v v %v/%v",
						rows, in, out, r, j, q[r*out+j], wantQ[j], k[r*out+j], wantK[j], v[r*out+j], wantV[j])
				}
			}
		}
	}
}

// TestAppendBatchNoAllocs: the per-token hot path must not allocate — the
// arena provisions the whole working set at construction.
func TestAppendBatchNoAllocs(t *testing.T) {
	m := goldenModel(t, benchCfg(), 81)
	bs := m.NewBatchSession(4)
	lanes := []int{0, 1, 2, 3}
	toks := []int{1, 2, 3, 4}
	allocs := testing.AllocsPerRun(16, func() {
		if err := bs.AppendBatch(lanes, toks); err != nil {
			t.Fatal(err)
		}
		for _, l := range lanes {
			bs.pos[l] = 0 // rewind so the run never overflows Ctx
		}
	})
	if allocs != 0 {
		t.Errorf("AppendBatch allocates %.1f objects per call, want 0", allocs)
	}
}

// BenchmarkBatchAppend measures the GEMM win directly: B lanes stepped in
// lock-step versus B solo sessions appending the same tokens. The batched
// path reads each weight block once per step instead of once per lane.
func BenchmarkBatchAppend(b *testing.B) {
	m := goldenModel(b, benchCfg(), 9)
	rng := rand.New(rand.NewSource(10))
	seq := randSeq(rng, m.Cfg.Ctx, m.Cfg.Vocab)
	for _, lanes := range []int{4, 16, 32} {
		laneIDs := make([]int, lanes)
		toks := make([]int, lanes)
		for i := range laneIDs {
			laneIDs[i] = i
		}
		b.Run("lockstep/"+strconv.Itoa(lanes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bs := m.NewBatchSession(lanes)
				for _, tok := range seq {
					for j := range toks {
						toks[j] = tok
					}
					if err := bs.AppendBatch(laneIDs, toks); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run("solo/"+strconv.Itoa(lanes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ss := make([]*Session, lanes)
				for j := range ss {
					ss[j] = m.NewSession()
				}
				for _, tok := range seq {
					for _, s := range ss {
						if err := s.Append(tok); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}

// TestSeedLaneMatchesSolo seeds lock-step lanes from a frozen prefix session
// (the prefix-cache hit path) and requires every subsequent step to stay
// bit-identical to a solo Session that consumed the full sequence cold.
// Two lanes share one source to prove seeding never aliases its pages.
func TestSeedLaneMatchesSolo(t *testing.T) {
	cfg := Config{Vocab: 13, Ctx: 40, Dim: 24, Heads: 4, Layers: 3}
	m := goldenModel(t, cfg, 61)
	rng := rand.New(rand.NewSource(62))

	// Prefix longer than one page so SeedLane walks multiple pages.
	prefix := randSeq(rng, PageTokens+5, cfg.Vocab)
	frozen := m.NewSession()
	for _, tok := range prefix {
		if err := frozen.Append(tok); err != nil {
			t.Fatal(err)
		}
	}

	bs := m.NewBatchSession(3)
	for _, lane := range []int{0, 2} {
		if err := bs.SeedLane(lane, frozen); err != nil {
			t.Fatal(err)
		}
		compareLogitsBits(t, bs.Logits(lane), frozen.Logits(), "logits at seed")
		if bs.Len(lane) != frozen.Len() {
			t.Fatalf("lane %d: len %d after seed, want %d", lane, bs.Len(lane), frozen.Len())
		}
	}
	// Lane 1 consumes the prefix cold inside the batch.
	for _, tok := range prefix {
		if err := bs.AppendBatch([]int{1}, []int{tok}); err != nil {
			t.Fatal(err)
		}
	}

	// Divergent suffixes per lane, checked against cold solo sessions.
	solo := make([]*Session, 3)
	suffix := make([][]int, 3)
	for i := range solo {
		solo[i] = m.NewSession()
		for _, tok := range prefix {
			if err := solo[i].Append(tok); err != nil {
				t.Fatal(err)
			}
		}
		suffix[i] = randSeq(rng, cfg.Ctx-len(prefix), cfg.Vocab)
	}
	for step := 0; step < cfg.Ctx-len(prefix); step++ {
		lanes := []int{0, 1, 2}
		toks := []int{suffix[0][step], suffix[1][step], suffix[2][step]}
		if err := bs.AppendBatch(lanes, toks); err != nil {
			t.Fatal(err)
		}
		for i := range lanes {
			if err := solo[i].Append(toks[i]); err != nil {
				t.Fatal(err)
			}
			compareLogitsBits(t, bs.Logits(i), solo[i].Logits(), "seeded suffix")
		}
	}

	// The frozen source must be untouched by the lanes it seeded.
	if err := frozen.Append(1); err != nil {
		t.Fatal(err)
	}
	ref := m.NewSession()
	for _, tok := range append(append([]int(nil), prefix...), 1) {
		if err := ref.Append(tok); err != nil {
			t.Fatal(err)
		}
	}
	compareLogitsBits(t, frozen.Logits(), ref.Logits(), "frozen after seeding")
}

// TestSeedLaneErrors pins the guard rails: advanced lanes, bad lane ids, and
// cross-model sources are rejected without mutating the batch.
func TestSeedLaneErrors(t *testing.T) {
	cfg := Config{Vocab: 11, Ctx: 8, Dim: 8, Heads: 2, Layers: 1}
	m := goldenModel(t, cfg, 71)
	src := m.NewSession()
	if err := src.Append(3); err != nil {
		t.Fatal(err)
	}

	bs := m.NewBatchSession(2)
	if err := bs.SeedLane(-1, src); err == nil {
		t.Fatal("negative lane accepted")
	}
	if err := bs.SeedLane(2, src); err == nil {
		t.Fatal("out-of-range lane accepted")
	}
	if err := bs.AppendBatch([]int{0}, []int{1}); err != nil {
		t.Fatal(err)
	}
	if err := bs.SeedLane(0, src); err == nil {
		t.Fatal("seeding an advanced lane accepted")
	}
	m2 := goldenModel(t, cfg, 72)
	if err := bs.SeedLane(1, m2.NewSession()); err == nil {
		t.Fatal("cross-model seed accepted")
	}
}
