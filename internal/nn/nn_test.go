package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func tinyConfig() Config {
	return Config{Vocab: 11, Ctx: 8, Dim: 8, Heads: 2, Layers: 2}
}

func TestConfigValidate(t *testing.T) {
	good := tinyConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Vocab: 1, Ctx: 8, Dim: 8, Heads: 2, Layers: 1},
		{Vocab: 11, Ctx: 0, Dim: 8, Heads: 2, Layers: 1},
		{Vocab: 11, Ctx: 8, Dim: 7, Heads: 2, Layers: 1},
		{Vocab: 11, Ctx: 8, Dim: 8, Heads: 0, Layers: 1},
		{Vocab: 11, Ctx: 8, Dim: 8, Heads: 2, Layers: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestForwardShapesAndErrors(t *testing.T) {
	m, err := New(tinyConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.forward([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.logits.R != 3 || c.logits.C != 11 {
		t.Errorf("logits %dx%d", c.logits.R, c.logits.C)
	}
	if _, err := m.forward(nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := m.forward(make([]int, 9)); err == nil {
		t.Error("over-context input should error")
	}
	if _, err := m.forward([]int{99}); err == nil {
		t.Error("out-of-vocab token should error")
	}
}

// TestBackwardNumericGradient is the make-or-break test: analytic gradients
// must match central differences for a random selection of parameters.
func TestBackwardNumericGradient(t *testing.T) {
	m, err := New(Config{Vocab: 7, Ctx: 6, Dim: 4, Heads: 2, Layers: 2}, 42)
	if err != nil {
		t.Fatal(err)
	}
	seq := []int{1, 4, 2, 6, 3, 5}
	g := m.newGrads()
	if _, err := m.backward(seq, g); err != nil {
		t.Fatal(err)
	}

	lossAt := func() float64 {
		l, err := m.Loss(seq)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	rng := rand.New(rand.NewSource(7))
	const h = 1e-3
	checked := 0
	for pi, p := range m.params {
		// A few random coordinates per tensor.
		for trial := 0; trial < 3; trial++ {
			i := rng.Intn(len(p.W))
			orig := p.W[i]
			p.W[i] = orig + h
			fp := lossAt()
			p.W[i] = orig - h
			fm := lossAt()
			p.W[i] = orig
			want := (fp - fm) / (2 * h)
			got := float64(g.g[pi][i])
			tol := 2e-2*math.Abs(want) + 2e-3
			if math.Abs(got-want) > tol {
				t.Errorf("param %d[%d]: analytic %v, numeric %v", pi, i, got, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no gradients checked")
	}
}

func TestTrainReducesLoss(t *testing.T) {
	m, err := New(Config{Vocab: 8, Ctx: 10, Dim: 16, Heads: 2, Layers: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A deterministic pattern corpus: sequences counting up mod 5 offset
	// by 3 (token ids 3..7).
	var seqs [][]int
	for s := 0; s < 40; s++ {
		seq := make([]int, 9)
		for i := range seq {
			seq[i] = 3 + (s+i)%5
		}
		seqs = append(seqs, seq)
	}
	before, err := m.EvalLoss(seqs)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := m.Train(seqs, TrainConfig{Epochs: 12, Batch: 8, LR: 1e-2, Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	after, err := m.EvalLoss(seqs)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before/2 {
		t.Errorf("loss %v -> %v: training did not learn the pattern", before, after)
	}
	if len(hist) == 0 {
		t.Error("empty loss history")
	}
	// The pattern is deterministic: the model should predict the next
	// token almost surely.
	if after > 0.3 {
		t.Errorf("final loss %v too high for a deterministic pattern", after)
	}
}

// TestSessionMatchesForward verifies the KV-cached incremental path produces
// the same logits as the full forward pass at every position.
func TestSessionMatchesForward(t *testing.T) {
	m, err := New(tinyConfig(), 9)
	if err != nil {
		t.Fatal(err)
	}
	seq := []int{1, 5, 3, 7, 2, 9, 4, 6}
	c, err := m.forward(seq)
	if err != nil {
		t.Fatal(err)
	}
	s := m.NewSession()
	for t0, tok := range seq {
		if err := s.Append(tok); err != nil {
			t.Fatal(err)
		}
		got := s.Logits()
		want := c.logits.Row(t0)
		for v := range got {
			if math.Abs(float64(got[v]-want[v])) > 1e-3 {
				t.Fatalf("pos %d vocab %d: session %v, forward %v", t0, v, got[v], want[v])
			}
		}
	}
}

func TestSessionErrors(t *testing.T) {
	m, _ := New(tinyConfig(), 1)
	s := m.NewSession()
	if err := s.Append(100); err == nil {
		t.Error("out-of-vocab append should error")
	}
	for i := 0; i < 8; i++ {
		if err := s.Append(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(1); err == nil {
		t.Error("append beyond context should error")
	}
	fresh := m.NewSession()
	defer func() {
		if recover() == nil {
			t.Error("Logits before Append should panic")
		}
	}()
	fresh.Logits()
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, err := New(tinyConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	seq := []int{1, 2, 3, 4}
	want, err := m.Loss(seq)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.Loss(seq)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("loaded model loss %v, want %v", got, want)
	}
	if m2.NumParams() != m.NumParams() {
		t.Errorf("param counts differ: %d vs %d", m2.NumParams(), m.NumParams())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("garbage should not load")
	}
}

func TestPadTokenExcludedFromLoss(t *testing.T) {
	m, _ := New(tinyConfig(), 2)
	// Same prefix, one with trailing PAD targets: losses over the valid
	// region must match.
	full := []int{1, 2, 3}
	padded := []int{1, 2, 3, PadToken, PadToken}
	lf, err := m.Loss(full)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := m.Loss(padded)
	if err != nil {
		t.Fatal(err)
	}
	// padded has inputs {1,2,3,PAD} and targets {2,3,PAD,PAD}: two valid
	// targets, same as full's {2,3}. Attention at the PAD input position
	// cannot influence earlier positions (causal), so losses agree.
	if math.Abs(lf-lp) > 1e-5 {
		t.Errorf("loss with pad %v, without %v", lp, lf)
	}
}

func TestTrainInputValidation(t *testing.T) {
	m, _ := New(tinyConfig(), 1)
	if _, err := m.Train(nil, TrainConfig{}); err == nil {
		t.Error("empty corpus should error")
	}
	if _, err := m.Train([][]int{{1}}, TrainConfig{}); err == nil {
		t.Error("length-1 sequence should error")
	}
	if _, err := m.Train([][]int{make([]int, 20)}, TrainConfig{}); err == nil {
		t.Error("over-context sequence should error")
	}
}

func TestDeterministicInit(t *testing.T) {
	a, _ := New(tinyConfig(), 77)
	b, _ := New(tinyConfig(), 77)
	la, _ := a.Loss([]int{1, 2, 3})
	lb, _ := b.Loss([]int{1, 2, 3})
	if la != lb {
		t.Errorf("same seed, different models: %v vs %v", la, lb)
	}
	c, _ := New(tinyConfig(), 78)
	lc, _ := c.Loss([]int{1, 2, 3})
	if la == lc {
		t.Error("different seeds produced identical models (suspicious)")
	}
}

func TestLRSchedule(t *testing.T) {
	tc := TrainConfig{LR: 1.0, Warmup: 10}
	if lr := lrAt(tc, 0, 100); lr != 0.1 {
		t.Errorf("warmup start lr = %v", lr)
	}
	if lr := lrAt(tc, 9, 100); lr != 1.0 {
		t.Errorf("warmup end lr = %v", lr)
	}
	if lr := lrAt(tc, 99, 100); lr > 0.15 {
		t.Errorf("final lr = %v, want near 0.1·peak", lr)
	}
	mid := lrAt(tc, 55, 100)
	if mid <= 0.1 || mid >= 1.0 {
		t.Errorf("mid lr = %v out of range", mid)
	}
}
