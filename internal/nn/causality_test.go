package nn

import (
	"math"
	"math/rand"
	"testing"
)

// TestCausalMask: logits at position t must depend only on tokens ≤ t.
// Changing a later token must leave earlier positions' logits untouched —
// the property LeJIT's incremental masking relies on.
func TestCausalMask(t *testing.T) {
	m, err := New(tinyConfig(), 21)
	if err != nil {
		t.Fatal(err)
	}
	base := []int{1, 4, 2, 7, 3, 5}
	mut := append([]int(nil), base...)
	mut[4] = 9 // change a late token

	cb, err := m.forward(base)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := m.forward(mut)
	if err != nil {
		t.Fatal(err)
	}
	// Positions 0..3 see identical prefixes; logits must match exactly.
	for pos := 0; pos < 4; pos++ {
		for v := 0; v < m.Cfg.Vocab; v++ {
			if cb.logits.At(pos, v) != cm.logits.At(pos, v) {
				t.Fatalf("position %d logit %d changed when a later token changed", pos, v)
			}
		}
	}
	// Position 4 consumed the changed token; logits should differ.
	same := true
	for v := 0; v < m.Cfg.Vocab; v++ {
		if cb.logits.At(4, v) != cm.logits.At(4, v) {
			same = false
			break
		}
	}
	if same {
		t.Error("position 4 logits identical despite different input token (model ignores input?)")
	}
}

// TestTrainingImprovesHeldOut: the model must generalize, not memorize —
// held-out loss on the same distribution drops substantially.
func TestTrainingImprovesHeldOut(t *testing.T) {
	m, err := New(Config{Vocab: 12, Ctx: 12, Dim: 16, Heads: 2, Layers: 2}, 31)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	gen := func(n int) [][]int {
		out := make([][]int, n)
		for i := range out {
			// Structured sequences: token k+3 follows k, wrapping in 3..11.
			start := 3 + rng.Intn(9)
			seq := make([]int, 10)
			for j := range seq {
				seq[j] = 3 + (start-3+j*3)%9
			}
			out[i] = seq
		}
		return out
	}
	train := gen(120)
	held := gen(30)
	before, err := m.EvalLoss(held)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(train, TrainConfig{Epochs: 8, LR: 5e-3, Seed: 2, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	after, err := m.EvalLoss(held)
	if err != nil {
		t.Fatal(err)
	}
	if after > before*0.6 {
		t.Errorf("held-out loss %v -> %v: no generalization", before, after)
	}
	if math.IsNaN(after) || math.IsInf(after, 0) {
		t.Errorf("loss diverged: %v", after)
	}
}

// TestWeightDecayShrinksWeights: AdamW-style decay must reduce weight norms
// relative to no decay, all else equal.
func TestWeightDecayShrinksWeights(t *testing.T) {
	seqs := [][]int{{1, 2, 3, 4, 5, 6}, {2, 3, 4, 5, 6, 7}}
	norm := func(wd float64) float64 {
		m, err := New(tinyConfig(), 5)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Train(seqs, TrainConfig{Epochs: 30, Seed: 1, Workers: 1, WeightDecay: wd}); err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, p := range m.params {
			for _, w := range p.W {
				s += float64(w) * float64(w)
			}
		}
		return math.Sqrt(s)
	}
	plain := norm(0)
	decayed := norm(0.3)
	if decayed >= plain {
		t.Errorf("weight decay did not shrink weights: %v vs %v", decayed, plain)
	}
}
