package nn

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

// This file pins the kernel worker group's contract: sharded kernels are
// bit-identical to serial ones at every worker count, across ragged
// lock-step batches, speculative rollbacks, and prefix-cache warm starts.
// The dispatch threshold is forced to zero so the test-sized kernels
// actually take the parallel path.

// forceParallel drops the dispatch threshold for the duration of the test
// so even tiny kernels go through the worker group.
func forceParallel(t *testing.T) {
	t.Helper()
	old := minParallelMadds
	minParallelMadds = 1
	t.Cleanup(func() { minParallelMadds = old })
}

// setWorkers configures the model's worker group and restores the serial
// path on cleanup (pools are per-model, and models are per-test here, but
// parked helper goroutines should not outlive the test).
func setWorkers(t *testing.T, m *Model, n int) {
	t.Helper()
	m.SetKernelWorkers(n)
	t.Cleanup(func() { m.SetKernelWorkers(1) })
}

// batchStep is one pre-computed AppendBatch call, so a schedule can be
// replayed identically under different worker counts.
type batchStep struct {
	lanes, toks []int
}

// buildSchedule turns per-lane sequences into a fixed ragged schedule:
// lanes sit out ~1 step in 4, so positions stay uneven throughout.
func buildSchedule(rng *rand.Rand, seqs [][]int) []batchStep {
	fed := make([]int, len(seqs))
	var steps []batchStep
	for {
		var st batchStep
		for i, seq := range seqs {
			if fed[i] >= len(seq) {
				continue
			}
			if len(seqs) > 1 && rng.Intn(4) == 0 {
				continue
			}
			st.lanes = append(st.lanes, i)
			st.toks = append(st.toks, seq[fed[i]])
			fed[i]++
		}
		if len(st.lanes) > 0 {
			steps = append(steps, st)
		}
		done := true
		for i, seq := range seqs {
			if fed[i] < len(seq) {
				done = false
			}
		}
		if done {
			return steps
		}
	}
}

// replaySchedule drives the schedule through a fresh BatchSession plus one
// solo Session per lane, returning every logits row in visit order (batch
// rows interleaved with the matching solo rows).
func replaySchedule(t *testing.T, m *Model, nLanes int, steps []batchStep) [][]float32 {
	t.Helper()
	bs := m.NewBatchSession(nLanes)
	solo := make([]*Session, nLanes)
	for i := range solo {
		solo[i] = m.NewSession()
	}
	var out [][]float32
	for _, st := range steps {
		if err := bs.AppendBatch(st.lanes, st.toks); err != nil {
			t.Fatal(err)
		}
		for j, lane := range st.lanes {
			if err := solo[lane].Append(st.toks[j]); err != nil {
				t.Fatal(err)
			}
			out = append(out, append([]float32(nil), bs.Logits(lane)...))
			out = append(out, append([]float32(nil), solo[lane].Logits()...))
		}
	}
	return out
}

// TestParallelKernelsMatchSerial is the sharding contract: for worker
// counts {1,2,3,8}, a ragged lock-step batch and its solo shadows produce
// logits bit-identical to the serial baseline, on shapes that exercise the
// 4-wide unroll tails and odd head dims.
func TestParallelKernelsMatchSerial(t *testing.T) {
	forceParallel(t)
	cfgs := []Config{
		{Vocab: 13, Ctx: 16, Dim: 24, Heads: 4, Layers: 2},
		{Vocab: 11, Ctx: 12, Dim: 6, Heads: 3, Layers: 2}, // dh=2, tail-heavy
	}
	for ci, cfg := range cfgs {
		m := goldenModel(t, cfg, int64(700+ci))
		rng := rand.New(rand.NewSource(int64(41 + ci)))
		seqs := laneSchedule(rng, 4, 2, cfg.Ctx, cfg.Vocab)
		steps := buildSchedule(rng, seqs)

		base := replaySchedule(t, m, len(seqs), steps)
		for _, w := range []int{1, 2, 3, 8} {
			setWorkers(t, m, w)
			got := replaySchedule(t, m, len(seqs), steps)
			if len(got) != len(base) {
				t.Fatalf("cfg %d workers %d: %d logit rows, want %d", ci, w, len(got), len(base))
			}
			for i := range base {
				compareLogitsBits(t, got[i], base[i], "sharded vs serial")
			}
		}
	}
}

// TestParallelRewindMatchesSerial rolls a speculating lane back mid-window
// under a sharded worker group and requires the post-rollback decode to be
// bit-identical to a serial lane that never speculated.
func TestParallelRewindMatchesSerial(t *testing.T) {
	forceParallel(t)
	cfg := Config{Vocab: 13, Ctx: 20, Dim: 24, Heads: 4, Layers: 2}
	m := goldenModel(t, cfg, 710)
	rng := rand.New(rand.NewSource(43))
	prefix := randSeq(rng, 5, cfg.Vocab)
	spec := randSeq(rng, 4, cfg.Vocab)
	real := randSeq(rng, 6, cfg.Vocab)

	run := func() ([]float32, []float32) {
		// Batch lane 0 speculates and rolls back; lane 1 rides along so the
		// batch stays ragged. A solo session does the same via Rewind.
		bs := m.NewBatchSession(2)
		s := m.NewSession()
		for _, tok := range prefix {
			if err := bs.AppendBatch([]int{0, 1}, []int{tok, tok}); err != nil {
				t.Fatal(err)
			}
			if err := s.Append(tok); err != nil {
				t.Fatal(err)
			}
		}
		mark := bs.Len(0)
		snapB := append([]float32(nil), bs.Logits(0)...)
		snapS := append([]float32(nil), s.Logits()...)
		for _, tok := range spec {
			if err := bs.AppendBatch([]int{0}, []int{tok}); err != nil {
				t.Fatal(err)
			}
			if err := s.Append(tok); err != nil {
				t.Fatal(err)
			}
		}
		if err := bs.RewindLane(0, mark, snapB); err != nil {
			t.Fatal(err)
		}
		if err := s.Rewind(mark, snapS); err != nil {
			t.Fatal(err)
		}
		for _, tok := range real {
			if err := bs.AppendBatch([]int{0, 1}, []int{tok, tok}); err != nil {
				t.Fatal(err)
			}
			if err := s.Append(tok); err != nil {
				t.Fatal(err)
			}
		}
		return append([]float32(nil), bs.Logits(0)...), append([]float32(nil), s.Logits()...)
	}

	baseB, baseS := run()
	compareLogitsBits(t, baseB, baseS, "serial rewind batch vs solo")
	for _, w := range []int{2, 3, 8} {
		setWorkers(t, m, w)
		gotB, gotS := run()
		compareLogitsBits(t, gotB, baseB, "sharded rewound lane")
		compareLogitsBits(t, gotS, baseS, "sharded rewound session")
	}
}

// TestParallelSeedLaneMatchesSerial warm-starts lanes from a frozen prefix
// session (the prefix-cache path) under a sharded worker group.
func TestParallelSeedLaneMatchesSerial(t *testing.T) {
	forceParallel(t)
	cfg := Config{Vocab: 13, Ctx: 20, Dim: 24, Heads: 4, Layers: 2}
	m := goldenModel(t, cfg, 720)
	rng := rand.New(rand.NewSource(47))
	prefix := randSeq(rng, 6, cfg.Vocab)
	tail := randSeq(rng, 5, cfg.Vocab)

	run := func() []float32 {
		src := m.NewSession()
		for _, tok := range prefix {
			if err := src.Append(tok); err != nil {
				t.Fatal(err)
			}
		}
		bs := m.NewBatchSession(2)
		if err := bs.SeedLane(0, src); err != nil {
			t.Fatal(err)
		}
		if err := bs.SeedLane(1, src); err != nil {
			t.Fatal(err)
		}
		for _, tok := range tail {
			if err := bs.AppendBatch([]int{0, 1}, []int{tok, tok}); err != nil {
				t.Fatal(err)
			}
			compareLogitsBits(t, bs.Logits(0), bs.Logits(1), "sibling seeded lanes")
		}
		return append([]float32(nil), bs.Logits(0)...)
	}

	base := run()
	for _, w := range []int{2, 8} {
		setWorkers(t, m, w)
		compareLogitsBits(t, run(), base, "sharded seeded lane")
	}
}

// TestSetKernelWorkers pins the configuration semantics: 0 means GOMAXPROCS,
// 1 restores the serial path, and repeat calls with the same count are
// no-ops (same pool, no helper churn) — the property engine-clone config
// re-application relies on.
func TestSetKernelWorkers(t *testing.T) {
	m := goldenModel(t, Config{Vocab: 8, Ctx: 4, Dim: 4, Heads: 2, Layers: 1}, 730)
	if got := m.KernelWorkers(); got != 1 {
		t.Fatalf("fresh model KernelWorkers() = %d, want 1", got)
	}
	if got := m.SetKernelWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("SetKernelWorkers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	m.SetKernelWorkers(3)
	if got := m.KernelWorkers(); got != 3 {
		t.Fatalf("KernelWorkers() = %d, want 3", got)
	}
	pool := m.kern.Load()
	m.SetKernelWorkers(3)
	if m.kern.Load() != pool {
		t.Fatal("SetKernelWorkers with an unchanged count replaced the pool")
	}
	m.SetKernelWorkers(1)
	if got := m.KernelWorkers(); got != 1 {
		t.Fatalf("KernelWorkers() after reset = %d, want 1", got)
	}
	if m.kern.Load() != nil {
		t.Fatal("serial model still holds a pool")
	}
}

// TestParallelForRunsEveryBlockOnce covers the dispatch machinery directly,
// including dispatch onto a stopped pool (helpers gone, caller drains).
func TestParallelForRunsEveryBlockOnce(t *testing.T) {
	for _, workers := range []int{2, 8} {
		p := newKernelPool(workers)
		for _, blocks := range []int{1, 3, 17} {
			counts := make([]atomic.Int32, blocks)
			p.parallelFor(blocks, func(b int) { counts[b].Add(1) })
			for b := range counts {
				if got := counts[b].Load(); got != 1 {
					t.Fatalf("workers=%d blocks=%d: block %d ran %d times", workers, blocks, b, got)
				}
			}
		}
		p.stop()
		counts := make([]atomic.Int32, 5)
		p.parallelFor(5, func(b int) { counts[b].Add(1) })
		for b := range counts {
			if got := counts[b].Load(); got != 1 {
				t.Fatalf("stopped pool: block %d ran %d times", b, got)
			}
		}
	}
}

// TestKernelOpsCounters: sharded decoding is actually exercising the
// parallel path (guards against a silently-serial "speedup").
func TestKernelOpsCounters(t *testing.T) {
	forceParallel(t)
	cfg := Config{Vocab: 13, Ctx: 8, Dim: 24, Heads: 4, Layers: 2}
	m := goldenModel(t, cfg, 740)
	setWorkers(t, m, 2)
	bs := m.NewBatchSession(2)
	if err := bs.AppendBatch([]int{0, 1}, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	par, _ := m.KernelOps()
	if par == 0 {
		t.Fatal("no parallel kernel dispatches recorded with workers=2 and a zero threshold")
	}
	m.SetKernelWorkers(1)
	par0, ser0 := m.KernelOps()
	if err := bs.AppendBatch([]int{0, 1}, []int{2, 3}); err != nil {
		t.Fatal(err)
	}
	par1, ser1 := m.KernelOps()
	if par1 != par0 {
		t.Fatalf("serial model recorded %d new parallel dispatches", par1-par0)
	}
	if ser1 == ser0 {
		t.Fatal("serial model recorded no serial dispatches")
	}
}
