// Package nn implements a GPT-2-style decoder-only transformer language
// model in pure Go: token and learned positional embeddings, pre-LayerNorm
// residual blocks with multi-head causal self-attention and GELU MLPs, a
// weight-tied LM head, full manual backpropagation, Adam training, and
// incremental KV-cached sampling.
//
// The paper deliberately pairs LeJIT with a "generic, less powerful LLM"
// trained from scratch on the target telemetry corpus (§4, "LeJIT
// implementation"); this package is that model. It exposes per-step logits
// so the LeJIT engine can mask rule-violating tokens before sampling.
package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Config describes a model architecture.
type Config struct {
	Vocab  int // vocabulary size
	Ctx    int // maximum sequence length
	Dim    int // embedding width
	Heads  int // attention heads (must divide Dim)
	Layers int // transformer blocks
	FF     int // MLP hidden multiple (0 → 4)
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Vocab < 2:
		return fmt.Errorf("nn: Vocab %d < 2", c.Vocab)
	case c.Ctx < 1:
		return fmt.Errorf("nn: Ctx %d < 1", c.Ctx)
	case c.Dim < 1:
		return fmt.Errorf("nn: Dim %d < 1", c.Dim)
	case c.Heads < 1 || c.Dim%c.Heads != 0:
		return fmt.Errorf("nn: Heads %d must divide Dim %d", c.Heads, c.Dim)
	case c.Layers < 1:
		return fmt.Errorf("nn: Layers %d < 1", c.Layers)
	case c.FF < 0:
		return fmt.Errorf("nn: FF %d < 0", c.FF)
	}
	return nil
}

func (c Config) ff() int {
	if c.FF == 0 {
		return 4
	}
	return c.FF
}

// Param is one parameter tensor with its Adam state. W holds the weights;
// gradient buffers live outside the model (see grads) so that training
// workers can accumulate independently.
type Param struct {
	W    []float32
	M, V []float32 // Adam first/second moments
}

func newParam(n int) *Param {
	return &Param{W: make([]float32, n), M: make([]float32, n), V: make([]float32, n)}
}

// layerParams holds one transformer block's parameters. Linear weights are
// stored [in, out] row-major, applied as y = x·W + b.
type layerParams struct {
	ln1g, ln1b     *Param // [D]
	wq, wk, wv, wo *Param // [D, D]
	bq, bk, bv, bo *Param // [D]
	ln2g, ln2b     *Param // [D]
	w1             *Param // [D, F·D]
	b1             *Param // [F·D]
	w2             *Param // [F·D, D]
	b2             *Param // [D]
}

// Model is a trained (or trainable) transformer LM. Create with New, or
// Load a serialized one. The LM head is weight-tied to the token embedding.
type Model struct {
	Cfg    Config
	tok    *Param // [V, D]
	pos    *Param // [Ctx, D]
	layers []layerParams
	lnfg   *Param // [D]
	lnfb   *Param // [D]

	params []*Param // registry, fixed order (serialization + optimizer)
	step   int      // Adam time step

	// Inference runtime state, never serialized: the kernel worker group
	// (parallel.go) and the int8 weight store (quant.go). Atomic pointers so
	// sessions read them lock-free per dispatch; the mutexes serialize
	// reconfiguration only.
	kern    atomic.Pointer[kernelPool]
	kernMu  sync.Mutex
	quant   atomic.Pointer[modelQuant]
	quantMu sync.Mutex
	quantOn atomic.Bool

	// Kernel dispatch counters (see KernelOps).
	parallelOps, serialOps atomic.Uint64
}

// New initializes a model with GPT-2-style random weights (N(0, 0.02²),
// residual projections scaled by 1/√(2·Layers), LayerNorm gains at 1).
func New(cfg Config, seed int64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Model{Cfg: cfg}
	d, f := cfg.Dim, cfg.ff()*cfg.Dim

	reg := func(n int) *Param {
		p := newParam(n)
		m.params = append(m.params, p)
		return p
	}
	initN := func(p *Param, std float64) {
		for i := range p.W {
			p.W[i] = float32(rng.NormFloat64() * std)
		}
	}
	ones := func(p *Param) {
		for i := range p.W {
			p.W[i] = 1
		}
	}

	m.tok = reg(cfg.Vocab * d)
	initN(m.tok, 0.02)
	m.pos = reg(cfg.Ctx * d)
	initN(m.pos, 0.02)

	resStd := 0.02 / math.Sqrt(2*float64(cfg.Layers))
	m.layers = make([]layerParams, cfg.Layers)
	for l := range m.layers {
		ly := &m.layers[l]
		ly.ln1g = reg(d)
		ones(ly.ln1g)
		ly.ln1b = reg(d)
		ly.wq = reg(d * d)
		initN(ly.wq, 0.02)
		ly.bq = reg(d)
		ly.wk = reg(d * d)
		initN(ly.wk, 0.02)
		ly.bk = reg(d)
		ly.wv = reg(d * d)
		initN(ly.wv, 0.02)
		ly.bv = reg(d)
		ly.wo = reg(d * d)
		initN(ly.wo, resStd)
		ly.bo = reg(d)
		ly.ln2g = reg(d)
		ones(ly.ln2g)
		ly.ln2b = reg(d)
		ly.w1 = reg(d * f)
		initN(ly.w1, 0.02)
		ly.b1 = reg(f)
		ly.w2 = reg(f * d)
		initN(ly.w2, resStd)
		ly.b2 = reg(d)
	}
	m.lnfg = reg(d)
	ones(m.lnfg)
	m.lnfb = reg(d)
	return m, nil
}

// NumParams returns the total parameter count.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.params {
		n += len(p.W)
	}
	return n
}

// grads mirrors the model's parameter registry with gradient buffers.
type grads struct {
	g [][]float32
}

func (m *Model) newGrads() *grads {
	out := &grads{g: make([][]float32, len(m.params))}
	for i, p := range m.params {
		out.g[i] = make([]float32, len(p.W))
	}
	return out
}

func (g *grads) zero() {
	for _, buf := range g.g {
		for i := range buf {
			buf[i] = 0
		}
	}
}

// add accumulates other into g.
func (g *grads) add(other *grads) {
	for i, buf := range g.g {
		for j, v := range other.g[i] {
			buf[j] += v
		}
	}
}

// paramIndex locates p in the registry; used by the forward/backward code to
// find the matching grad buffer.
func (m *Model) gradFor(g *grads, p *Param) []float32 {
	for i, q := range m.params {
		if q == p {
			return g.g[i]
		}
	}
	panic("nn: parameter not registered")
}

// modelGob is the serialized form.
type modelGob struct {
	Cfg     Config
	Weights [][]float32
	Step    int
}

// Save writes the model (weights + config, not optimizer state beyond the
// step counter) to w using encoding/gob.
func (m *Model) Save(w io.Writer) error {
	g := modelGob{Cfg: m.Cfg, Step: m.step}
	for _, p := range m.params {
		g.Weights = append(g.Weights, p.W)
	}
	return gob.NewEncoder(w).Encode(g)
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var g modelGob
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("nn: decoding model: %w", err)
	}
	m, err := New(g.Cfg, 0)
	if err != nil {
		return nil, err
	}
	if len(g.Weights) != len(m.params) {
		return nil, fmt.Errorf("nn: model has %d tensors, file has %d", len(m.params), len(g.Weights))
	}
	for i, p := range m.params {
		if len(g.Weights[i]) != len(p.W) {
			return nil, fmt.Errorf("nn: tensor %d has %d weights, file has %d", i, len(p.W), len(g.Weights[i]))
		}
		copy(p.W, g.Weights[i])
	}
	m.step = g.Step
	return m, nil
}
