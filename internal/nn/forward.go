package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// PadToken is the target id excluded from the loss (matches vocab.PAD).
const PadToken = 0

// layerCache stores one block's forward activations for backprop.
type layerCache struct {
	xIn     *tensor.Mat // block input [T,D]
	ln1Mean []float32
	ln1Inv  []float32
	ln1Out  *tensor.Mat
	q, k, v *tensor.Mat
	probs   [][][]float32 // [head][i][j≤i] attention weights
	attnCat *tensor.Mat
	x1      *tensor.Mat // after attention residual
	ln2Mean []float32
	ln2Inv  []float32
	ln2Out  *tensor.Mat
	h1      *tensor.Mat // MLP pre-GELU [T,F]
	h1g     *tensor.Mat // MLP post-GELU [T,F]
}

// fwdCache stores the full forward pass of one sequence.
type fwdCache struct {
	T       int
	inputs  []int
	layers  []layerCache
	xFinal  *tensor.Mat
	lnfMean []float32
	lnfInv  []float32
	lnfOut  *tensor.Mat
	logits  *tensor.Mat // [T,V]
}

// forward runs the model over inputs (length T ≤ Ctx) and returns the cache.
func (m *Model) forward(inputs []int) (*fwdCache, error) {
	T := len(inputs)
	if T == 0 {
		return nil, fmt.Errorf("nn: empty input")
	}
	if T > m.Cfg.Ctx {
		return nil, fmt.Errorf("nn: sequence length %d exceeds context %d", T, m.Cfg.Ctx)
	}
	d := m.Cfg.Dim
	f := m.Cfg.ff() * d
	h := m.Cfg.Heads
	dh := d / h
	scale := float32(1 / math.Sqrt(float64(dh)))

	c := &fwdCache{T: T, inputs: append([]int(nil), inputs...)}
	x := tensor.NewMat(T, d)
	for t, tok := range inputs {
		if tok < 0 || tok >= m.Cfg.Vocab {
			return nil, fmt.Errorf("nn: token %d outside vocab %d", tok, m.Cfg.Vocab)
		}
		row := x.Row(t)
		copy(row, m.tok.W[tok*d:(tok+1)*d])
		pos := m.pos.W[t*d : (t+1)*d]
		for j := range row {
			row[j] += pos[j]
		}
	}

	c.layers = make([]layerCache, m.Cfg.Layers)
	for l := range m.layers {
		ly := &m.layers[l]
		lc := &c.layers[l]
		lc.xIn = x.Clone()

		// LN1
		lc.ln1Out = tensor.NewMat(T, d)
		lc.ln1Mean = make([]float32, T)
		lc.ln1Inv = make([]float32, T)
		for t := 0; t < T; t++ {
			lc.ln1Mean[t], lc.ln1Inv[t] = tensor.LayerNormRow(lc.ln1Out.Row(t), lc.xIn.Row(t), ly.ln1g.W, ly.ln1b.W)
		}

		// Q, K, V projections.
		lc.q = linear(lc.ln1Out, ly.wq, ly.bq, d, d)
		lc.k = linear(lc.ln1Out, ly.wk, ly.bk, d, d)
		lc.v = linear(lc.ln1Out, ly.wv, ly.bv, d, d)

		// Causal multi-head attention.
		lc.attnCat = tensor.NewMat(T, d)
		lc.probs = make([][][]float32, h)
		for hd := 0; hd < h; hd++ {
			off := hd * dh
			lc.probs[hd] = make([][]float32, T)
			for i := 0; i < T; i++ {
				qi := lc.q.Row(i)[off : off+dh]
				p := make([]float32, i+1)
				for j := 0; j <= i; j++ {
					p[j] = tensor.Dot(qi, lc.k.Row(j)[off:off+dh]) * scale
				}
				tensor.SoftmaxRow(p)
				lc.probs[hd][i] = p
				out := lc.attnCat.Row(i)[off : off+dh]
				for j := 0; j <= i; j++ {
					tensor.Axpy(out, p[j], lc.v.Row(j)[off:off+dh])
				}
			}
		}

		// Output projection + residual.
		proj := linear(lc.attnCat, ly.wo, ly.bo, d, d)
		lc.x1 = lc.xIn.Clone()
		for i := range lc.x1.W {
			lc.x1.W[i] += proj.W[i]
		}

		// LN2 + MLP + residual.
		lc.ln2Out = tensor.NewMat(T, d)
		lc.ln2Mean = make([]float32, T)
		lc.ln2Inv = make([]float32, T)
		for t := 0; t < T; t++ {
			lc.ln2Mean[t], lc.ln2Inv[t] = tensor.LayerNormRow(lc.ln2Out.Row(t), lc.x1.Row(t), ly.ln2g.W, ly.ln2b.W)
		}
		lc.h1 = linear(lc.ln2Out, ly.w1, ly.b1, d, f)
		lc.h1g = tensor.NewMat(T, f)
		tensor.GELU(lc.h1g.W, lc.h1.W)
		mlpOut := linear(lc.h1g, ly.w2, ly.b2, f, d)
		x = lc.x1.Clone()
		for i := range x.W {
			x.W[i] += mlpOut.W[i]
		}
	}

	c.xFinal = x
	c.lnfOut = tensor.NewMat(T, d)
	c.lnfMean = make([]float32, T)
	c.lnfInv = make([]float32, T)
	for t := 0; t < T; t++ {
		c.lnfMean[t], c.lnfInv[t] = tensor.LayerNormRow(c.lnfOut.Row(t), x.Row(t), m.lnfg.W, m.lnfb.W)
	}

	// Tied LM head: logits = lnfOut · tokᵀ.
	c.logits = tensor.NewMat(T, m.Cfg.Vocab)
	tokMat := tensor.FromSlice(m.Cfg.Vocab, d, m.tok.W)
	tensor.MatMulAddTransB(c.logits, c.lnfOut, tokMat)
	return c, nil
}

// linear computes x·W + b for W stored [in, out].
func linear(x *tensor.Mat, w, b *Param, in, out int) *tensor.Mat {
	y := tensor.NewMat(x.R, out)
	tensor.MatMul(y, x, tensor.FromSlice(in, out, w.W))
	tensor.AddRow(y, b.W)
	return y
}

// Loss computes the mean next-token cross-entropy of seq (inputs seq[:len-1],
// targets seq[1:]); targets equal to PadToken are excluded.
func (m *Model) Loss(seq []int) (float64, error) {
	if len(seq) < 2 {
		return 0, fmt.Errorf("nn: sequence too short (%d)", len(seq))
	}
	c, err := m.forward(seq[:len(seq)-1])
	if err != nil {
		return 0, err
	}
	loss, _ := ceLoss(c, seq[1:])
	return loss, nil
}

// ceLoss computes the mean cross-entropy over valid targets and the count.
func ceLoss(c *fwdCache, targets []int) (float64, int) {
	var loss float64
	n := 0
	for t := 0; t < c.T; t++ {
		if targets[t] == PadToken {
			continue
		}
		row := c.logits.Row(t)
		loss += -logSoftmaxAt(row, targets[t])
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return loss / float64(n), n
}

// logSoftmaxAt returns log softmax(row)[idx], numerically stable.
func logSoftmaxAt(row []float32, idx int) float64 {
	maxV := row[0]
	for _, v := range row[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for _, v := range row {
		sum += math.Exp(float64(v - maxV))
	}
	return float64(row[idx]-maxV) - math.Log(sum)
}

// backward computes gradients of the mean cross-entropy loss for one
// sequence, accumulating into g. Returns the loss.
func (m *Model) backward(seq []int, g *grads) (float64, error) {
	if len(seq) < 2 {
		return 0, fmt.Errorf("nn: sequence too short (%d)", len(seq))
	}
	inputs, targets := seq[:len(seq)-1], seq[1:]
	c, err := m.forward(inputs)
	if err != nil {
		return 0, err
	}
	loss, nValid := ceLoss(c, targets)
	if nValid == 0 {
		return 0, nil
	}

	T := c.T
	d := m.Cfg.Dim
	f := m.Cfg.ff() * d
	h := m.Cfg.Heads
	dh := d / h
	scale := float32(1 / math.Sqrt(float64(dh)))
	V := m.Cfg.Vocab

	// dlogits = (softmax − onehot)/nValid on valid rows.
	dlogits := tensor.NewMat(T, V)
	for t := 0; t < T; t++ {
		if targets[t] == PadToken {
			continue
		}
		src := c.logits.Row(t)
		dst := dlogits.Row(t)
		copy(dst, src)
		tensor.SoftmaxRow(dst)
		dst[targets[t]] -= 1
		tensor.Scale(dst, 1/float32(nValid))
	}

	dTok := m.gradFor(g, m.tok)
	dPos := m.gradFor(g, m.pos)

	// Tied head backward: logits = lnfOut·tokᵀ
	//   dlnfOut = dlogits·tok ; dtok += dlogitsᵀ·lnfOut
	dLnfOut := tensor.NewMat(T, d)
	tokMat := tensor.FromSlice(V, d, m.tok.W)
	tensor.MatMul(dLnfOut, dlogits, tokMat)
	tensor.MatMulAddTransA(tensor.FromSlice(V, d, dTok), dlogits, c.lnfOut)

	// Final LayerNorm backward.
	dx := tensor.NewMat(T, d)
	dlnfg := m.gradFor(g, m.lnfg)
	dlnfb := m.gradFor(g, m.lnfb)
	for t := 0; t < T; t++ {
		tensor.LayerNormBackwardRow(dx.Row(t), dLnfOut.Row(t), c.xFinal.Row(t), c.lnfMean[t], c.lnfInv[t], m.lnfg.W, dlnfg, dlnfb)
	}

	// Blocks in reverse.
	for l := m.Cfg.Layers - 1; l >= 0; l-- {
		ly := &m.layers[l]
		lc := &c.layers[l]

		// ---- MLP half: x2 = x1 + (gelu(ln2Out·W1+b1))·W2+b2
		dMlpOut := dx // alias: residual passes dx through to both paths
		dH1g := tensor.NewMat(T, f)
		tensor.MatMulAddTransB(dH1g, dMlpOut, tensor.FromSlice(f, d, ly.w2.W))
		tensor.MatMulAddTransA(tensor.FromSlice(f, d, m.gradFor(g, ly.w2)), lc.h1g, dMlpOut)
		tensor.SumRowsInto(m.gradFor(g, ly.b2), dMlpOut)

		dH1 := tensor.NewMat(T, f)
		tensor.GELUBackward(dH1.W, dH1g.W, lc.h1.W)

		dLn2Out := tensor.NewMat(T, d)
		tensor.MatMulAddTransB(dLn2Out, dH1, tensor.FromSlice(d, f, ly.w1.W))
		tensor.MatMulAddTransA(tensor.FromSlice(d, f, m.gradFor(g, ly.w1)), lc.ln2Out, dH1)
		tensor.SumRowsInto(m.gradFor(g, ly.b1), dH1)

		dx1 := dx.Clone() // residual branch
		dln2g := m.gradFor(g, ly.ln2g)
		dln2b := m.gradFor(g, ly.ln2b)
		tmp := make([]float32, d)
		for t := 0; t < T; t++ {
			tensor.LayerNormBackwardRow(tmp, dLn2Out.Row(t), lc.x1.Row(t), lc.ln2Mean[t], lc.ln2Inv[t], ly.ln2g.W, dln2g, dln2b)
			row := dx1.Row(t)
			for j := range row {
				row[j] += tmp[j]
			}
		}

		// ---- Attention half: x1 = xIn + (attnCat·Wo+bo)
		dProj := dx1
		dAttnCat := tensor.NewMat(T, d)
		tensor.MatMulAddTransB(dAttnCat, dProj, tensor.FromSlice(d, d, ly.wo.W))
		tensor.MatMulAddTransA(tensor.FromSlice(d, d, m.gradFor(g, ly.wo)), lc.attnCat, dProj)
		tensor.SumRowsInto(m.gradFor(g, ly.bo), dProj)

		dQ := tensor.NewMat(T, d)
		dK := tensor.NewMat(T, d)
		dV := tensor.NewMat(T, d)
		for hd := 0; hd < h; hd++ {
			off := hd * dh
			for i := 0; i < T; i++ {
				p := lc.probs[hd][i]
				dOut := dAttnCat.Row(i)[off : off+dh]
				dp := make([]float32, i+1)
				for j := 0; j <= i; j++ {
					dp[j] = tensor.Dot(dOut, lc.v.Row(j)[off:off+dh])
					tensor.Axpy(dV.Row(j)[off:off+dh], p[j], dOut)
				}
				ds := make([]float32, i+1)
				tensor.SoftmaxBackwardRow(ds, dp, p)
				qi := lc.q.Row(i)[off : off+dh]
				dqi := dQ.Row(i)[off : off+dh]
				for j := 0; j <= i; j++ {
					tensor.Axpy(dqi, ds[j]*scale, lc.k.Row(j)[off:off+dh])
					tensor.Axpy(dK.Row(j)[off:off+dh], ds[j]*scale, qi)
				}
			}
		}

		// Back through Q/K/V projections into LN1 output.
		dLn1Out := tensor.NewMat(T, d)
		backLinear(dLn1Out, dQ, lc.ln1Out, ly.wq, d, d, m, g, ly.bq)
		backLinear(dLn1Out, dK, lc.ln1Out, ly.wk, d, d, m, g, ly.bk)
		backLinear(dLn1Out, dV, lc.ln1Out, ly.wv, d, d, m, g, ly.bv)

		// LN1 backward into the block input, plus the residual branch.
		dxIn := dx1.Clone()
		dln1g := m.gradFor(g, ly.ln1g)
		dln1b := m.gradFor(g, ly.ln1b)
		for t := 0; t < T; t++ {
			tensor.LayerNormBackwardRow(tmp, dLn1Out.Row(t), lc.xIn.Row(t), lc.ln1Mean[t], lc.ln1Inv[t], ly.ln1g.W, dln1g, dln1b)
			row := dxIn.Row(t)
			for j := range row {
				row[j] += tmp[j]
			}
		}
		dx = dxIn
	}

	// Embedding gradients.
	for t := 0; t < T; t++ {
		row := dx.Row(t)
		tok := inputs[t]
		tensor.Axpy(dTok[tok*d:(tok+1)*d], 1, row)
		tensor.Axpy(dPos[t*d:(t+1)*d], 1, row)
	}
	return loss, nil
}

// backLinear accumulates gradients for y = x·W + b:
// dxAcc += dy·Wᵀ, dW += xᵀ·dy, db += Σrows dy.
func backLinear(dxAcc, dy, x *tensor.Mat, w *Param, in, out int, m *Model, g *grads, b *Param) {
	tensor.MatMulAddTransB(dxAcc, dy, tensor.FromSlice(in, out, w.W))
	tensor.MatMulAddTransA(tensor.FromSlice(in, out, m.gradFor(g, w)), x, dy)
	tensor.SumRowsInto(m.gradFor(g, b), dy)
}
