package nn

import (
	"math/rand"
	"testing"
)

// These tests pin the rewind contract speculative decoding depends on
// (DESIGN.md §13): after Rewind(pos, snap) a session re-fed the same suffix
// must produce bit-identical logits to a session that never diverged, even
// across page boundaries and with clones sharing the rewound pages.

func TestSessionRewindReDecodesBitIdentical(t *testing.T) {
	cfg := Config{Vocab: 11, Ctx: 3 * PageTokens, Dim: 8, Heads: 2, Layers: 2}
	m := goldenModel(t, cfg, 91)
	rng := rand.New(rand.NewSource(7))
	seq := randSeq(rng, cfg.Ctx-1, cfg.Vocab)

	// Checkpoints straddling page boundaries: mid-page, exactly on a
	// boundary, and one past it.
	for _, cp := range []int{1, PageTokens - 1, PageTokens, PageTokens + 1, 2*PageTokens - 2} {
		ref := m.NewSession()
		spec := m.NewSession()
		for _, tok := range seq[:cp] {
			for _, s := range []*Session{ref, spec} {
				if err := s.Append(tok); err != nil {
					t.Fatal(err)
				}
			}
		}
		snap := append([]float32(nil), spec.Logits()...)
		specLogits := spec.Logits() // held across the rewind, like a driver would

		// Speculate down a divergent path, then roll back.
		for _, tok := range randSeq(rng, len(seq)-cp, cfg.Vocab) {
			if err := spec.Append(tok); err != nil {
				t.Fatal(err)
			}
		}
		if err := spec.Rewind(cp, snap); err != nil {
			t.Fatal(err)
		}
		if spec.Len() != cp {
			t.Fatalf("Len = %d after Rewind(%d)", spec.Len(), cp)
		}
		// The driver's held slice must show the restored values in place.
		compareLogitsBits(t, specLogits, ref.Logits(), "restored logits")

		for _, tok := range seq[cp:] {
			if err := ref.Append(tok); err != nil {
				t.Fatal(err)
			}
			if err := spec.Append(tok); err != nil {
				t.Fatal(err)
			}
			compareLogitsBits(t, spec.Logits(), ref.Logits(), "re-decoded logits")
		}
	}
}

// TestSessionRewindLeavesClonesIntact checks that rewinding past released
// pages cannot corrupt a clone that still shares them (refcounts must keep
// the pages alive), and that the rewound session copy-on-writes the kept
// partial page instead of scribbling over the clone's view.
func TestSessionRewindLeavesClonesIntact(t *testing.T) {
	cfg := Config{Vocab: 11, Ctx: 3 * PageTokens, Dim: 8, Heads: 2, Layers: 2}
	m := goldenModel(t, cfg, 92)
	rng := rand.New(rand.NewSource(8))
	seq := randSeq(rng, 2*PageTokens+3, cfg.Vocab)
	cp := PageTokens / 2

	s := m.NewSession()
	var snap []float32
	for i, tok := range seq {
		if err := s.Append(tok); err != nil {
			t.Fatal(err)
		}
		if i == cp-1 {
			snap = append([]float32(nil), s.Logits()...)
		}
	}
	frozen := s.Clone()
	defer frozen.Release()

	if err := s.Rewind(cp, snap); err != nil {
		t.Fatal(err)
	}
	// Re-decode a different suffix on the rewound session…
	for _, tok := range randSeq(rng, 4, cfg.Vocab) {
		if err := s.Append(tok); err != nil {
			t.Fatal(err)
		}
	}
	// …then verify the clone still continues from the full original prefix
	// exactly as an undisturbed session would.
	ref := m.NewSession()
	for _, tok := range seq {
		if err := ref.Append(tok); err != nil {
			t.Fatal(err)
		}
	}
	cont := randSeq(rng, 3, cfg.Vocab)
	for _, tok := range cont {
		if err := frozen.Append(tok); err != nil {
			t.Fatal(err)
		}
		if err := ref.Append(tok); err != nil {
			t.Fatal(err)
		}
		compareLogitsBits(t, frozen.Logits(), ref.Logits(), "clone after donor rewind")
	}
}

func TestSessionRewindErrors(t *testing.T) {
	cfg := Config{Vocab: 11, Ctx: 16, Dim: 8, Heads: 2, Layers: 2}
	m := goldenModel(t, cfg, 93)
	s := m.NewSession()
	if err := s.Append(1); err != nil {
		t.Fatal(err)
	}
	snap := append([]float32(nil), s.Logits()...)
	if err := s.Rewind(2, snap); err == nil {
		t.Error("Rewind past Len accepted")
	}
	if err := s.Rewind(-1, snap); err == nil {
		t.Error("Rewind(-1) accepted")
	}
	if err := s.Rewind(1, snap[:3]); err == nil {
		t.Error("short logits snapshot accepted")
	}
}

func TestRewindLaneReDecodesBitIdentical(t *testing.T) {
	cfg := Config{Vocab: 13, Ctx: 24, Dim: 24, Heads: 4, Layers: 3}
	m := goldenModel(t, cfg, 94)
	rng := rand.New(rand.NewSource(9))
	const lanes = 3
	seqs := laneSchedule(rng, lanes, 10, 20, cfg.Vocab)

	bs := m.NewBatchSession(lanes)
	ref := make([]*Session, lanes)
	for i := range ref {
		ref[i] = m.NewSession()
	}
	// Feed every lane its first 5 tokens, snapshotting lane 1 at position 3.
	var snap []float32
	const rewindLane, rewindPos = 1, 3
	for step := 0; step < 5; step++ {
		ls, ts := []int{}, []int{}
		for i, seq := range seqs {
			ls = append(ls, i)
			ts = append(ts, seq[step])
			if err := ref[i].Append(seq[step]); err != nil {
				t.Fatal(err)
			}
		}
		if err := bs.AppendBatch(ls, ts); err != nil {
			t.Fatal(err)
		}
		if step == rewindPos-1 {
			snap = append([]float32(nil), bs.Logits(rewindLane)...)
		}
	}
	if err := bs.RewindLane(rewindLane, rewindPos, snap); err != nil {
		t.Fatal(err)
	}
	if bs.Len(rewindLane) != rewindPos {
		t.Fatalf("Len(lane) = %d after RewindLane(%d)", bs.Len(rewindLane), rewindPos)
	}
	// Rebuild the reference for the rewound lane and continue all lanes in
	// lock-step: the rewound lane replays seq[3:5] while the others advance
	// raggedly past it, so the batch stays desync-free by construction.
	ref[rewindLane].Release()
	ref[rewindLane] = m.NewSession()
	for _, tok := range seqs[rewindLane][:rewindPos] {
		if err := ref[rewindLane].Append(tok); err != nil {
			t.Fatal(err)
		}
	}
	fed := []int{5, rewindPos, 5}
	for {
		ls, ts := []int{}, []int{}
		for i, seq := range seqs {
			if fed[i] < len(seq) {
				ls = append(ls, i)
				ts = append(ts, seq[fed[i]])
			}
		}
		if len(ls) == 0 {
			break
		}
		if err := bs.AppendBatch(ls, ts); err != nil {
			t.Fatal(err)
		}
		for j, lane := range ls {
			if err := ref[lane].Append(ts[j]); err != nil {
				t.Fatal(err)
			}
			fed[lane]++
			compareLogitsBits(t, bs.Logits(lane), ref[lane].Logits(), "lane logits after rewind")
		}
	}
}

func TestRewindLaneErrors(t *testing.T) {
	cfg := Config{Vocab: 11, Ctx: 16, Dim: 8, Heads: 2, Layers: 2}
	m := goldenModel(t, cfg, 95)
	bs := m.NewBatchSession(2)
	if err := bs.AppendBatch([]int{0}, []int{1}); err != nil {
		t.Fatal(err)
	}
	snap := append([]float32(nil), bs.Logits(0)...)
	if err := bs.RewindLane(2, 0, snap); err == nil {
		t.Error("out-of-range lane accepted")
	}
	if err := bs.RewindLane(0, 2, snap); err == nil {
		t.Error("RewindLane past Len accepted")
	}
	if err := bs.RewindLane(0, 1, snap[:2]); err == nil {
		t.Error("short logits snapshot accepted")
	}
}
