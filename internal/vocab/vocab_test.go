package vocab

import (
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	tok := Telemetry()
	cases := []string{"", "0", "123,45|6:7", "100,8|20,15,25,39,1\n"}
	for _, s := range cases {
		ids, err := tok.Encode(s)
		if err != nil {
			t.Fatalf("Encode(%q): %v", s, err)
		}
		if got := tok.Decode(ids); got != s {
			t.Errorf("Decode(Encode(%q)) = %q", s, got)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	tok := Telemetry()
	alpha := tok.Alphabet()
	f := func(idxs []uint8) bool {
		b := make([]byte, len(idxs))
		for i, x := range idxs {
			b[i] = alpha[int(x)%len(alpha)]
		}
		s := string(b)
		ids, err := tok.Encode(s)
		if err != nil {
			return false
		}
		return tok.Decode(ids) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeSeqFraming(t *testing.T) {
	tok := Telemetry()
	ids, err := tok.EncodeSeq("12")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 || ids[0] != BOS || ids[len(ids)-1] != EOS {
		t.Errorf("EncodeSeq framing: %v", ids)
	}
	if got := tok.Decode(ids); got != "12" {
		t.Errorf("Decode skips specials: %q", got)
	}
}

func TestEncodeUnknownByte(t *testing.T) {
	tok := Telemetry()
	if _, err := tok.Encode("12x"); err == nil {
		t.Error("byte outside alphabet should error")
	}
}

func TestSpecialIDsDisjoint(t *testing.T) {
	tok := Telemetry()
	if tok.IsChar(PAD) || tok.IsChar(BOS) || tok.IsChar(EOS) {
		t.Error("special ids must not be character tokens")
	}
	if tok.Size() != FirstChar+14 {
		t.Errorf("Size = %d, want %d", tok.Size(), FirstChar+14)
	}
	for i := FirstChar; i < tok.Size(); i++ {
		if !tok.IsChar(i) {
			t.Errorf("id %d should be a char", i)
		}
		if got := tok.ID(tok.Char(i)); got != i {
			t.Errorf("ID(Char(%d)) = %d", i, got)
		}
	}
}

func TestDigitIDs(t *testing.T) {
	tok := Telemetry()
	ds := tok.DigitIDs()
	for d := 0; d < 10; d++ {
		if ds[d] == -1 {
			t.Fatalf("digit %d missing", d)
		}
		if tok.Char(ds[d]) != byte('0'+d) {
			t.Errorf("digit %d maps to %q", d, string(tok.Char(ds[d])))
		}
	}
	// A tokenizer without digits reports -1.
	nodigits := MustNew("abc")
	ds = nodigits.DigitIDs()
	for d := 0; d < 10; d++ {
		if ds[d] != -1 {
			t.Errorf("digit %d should be -1 in letters-only alphabet", d)
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(""); err == nil {
		t.Error("empty alphabet accepted")
	}
	if _, err := New("aa"); err == nil {
		t.Error("duplicate byte accepted")
	}
}

func TestCharPanicsOnSpecial(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Char(BOS) should panic")
		}
	}()
	Telemetry().Char(BOS)
}
