// Package vocab implements the character-level tokenizer LeJIT uses
// (paper §3/§4: "treats numeric values as plain text and uses a
// character-level tokenization scheme, generating each number digit by
// digit").
//
// A Tokenizer maps a fixed byte alphabet to contiguous token ids, reserving
// three special tokens: PAD (0), BOS (1), and EOS (2). Character tokens
// start at FirstChar. Encoding is total over the alphabet and Decode∘Encode
// is the identity on alphabet strings.
package vocab

import (
	"fmt"
	"strings"
)

// Special token ids.
const (
	PAD = 0 // padding (training batches)
	BOS = 1 // beginning of sequence
	EOS = 2 // end of sequence
	// FirstChar is the id of the first alphabet character.
	FirstChar = 3
)

// Tokenizer is an immutable character-level tokenizer.
type Tokenizer struct {
	chars []byte
	toID  [256]int // -1 when not in alphabet
}

// New builds a tokenizer over the given alphabet. Bytes must be unique.
func New(alphabet string) (*Tokenizer, error) {
	if alphabet == "" {
		return nil, fmt.Errorf("vocab: empty alphabet")
	}
	t := &Tokenizer{chars: []byte(alphabet)}
	for i := range t.toID {
		t.toID[i] = -1
	}
	for i, c := range t.chars {
		if t.toID[c] != -1 {
			return nil, fmt.Errorf("vocab: duplicate alphabet byte %q", string(c))
		}
		t.toID[c] = FirstChar + i
	}
	return t, nil
}

// MustNew is New that panics on error.
func MustNew(alphabet string) *Tokenizer {
	t, err := New(alphabet)
	if err != nil {
		panic(err)
	}
	return t
}

// Telemetry returns the tokenizer used for LeJIT's telemetry text format:
// digits, the intra-field separator ',', the field separator '|', the
// key/value separator ':', and newline as an additional record separator.
func Telemetry() *Tokenizer {
	return MustNew("0123456789,|:\n")
}

// Size is the vocabulary size including the three special tokens.
func (t *Tokenizer) Size() int { return FirstChar + len(t.chars) }

// ID returns the token id of byte c, or -1 if c is outside the alphabet.
func (t *Tokenizer) ID(c byte) int { return t.toID[c] }

// Char returns the byte of a character token id. It panics on special or
// out-of-range ids; use IsChar to guard.
func (t *Tokenizer) Char(id int) byte {
	if !t.IsChar(id) {
		panic(fmt.Sprintf("vocab: id %d is not a character token", id))
	}
	return t.chars[id-FirstChar]
}

// IsChar reports whether id denotes an alphabet character.
func (t *Tokenizer) IsChar(id int) bool {
	return id >= FirstChar && id < t.Size()
}

// Encode tokenizes s. It returns an error on bytes outside the alphabet.
func (t *Tokenizer) Encode(s string) ([]int, error) {
	out := make([]int, 0, len(s))
	for i := 0; i < len(s); i++ {
		id := t.toID[s[i]]
		if id == -1 {
			return nil, fmt.Errorf("vocab: byte %q at offset %d not in alphabet", string(s[i]), i)
		}
		out = append(out, id)
	}
	return out, nil
}

// Decode renders token ids back to text. Special tokens decode to nothing.
func (t *Tokenizer) Decode(ids []int) string {
	var b strings.Builder
	for _, id := range ids {
		if t.IsChar(id) {
			b.WriteByte(t.chars[id-FirstChar])
		}
	}
	return b.String()
}

// EncodeSeq wraps Encode with BOS/EOS framing for training sequences.
func (t *Tokenizer) EncodeSeq(s string) ([]int, error) {
	body, err := t.Encode(s)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, len(body)+2)
	out = append(out, BOS)
	out = append(out, body...)
	out = append(out, EOS)
	return out, nil
}

// DigitIDs returns the token ids of '0'..'9' in order; -1 entries mean the
// digit is not in the alphabet.
func (t *Tokenizer) DigitIDs() [10]int {
	var out [10]int
	for d := 0; d < 10; d++ {
		out[d] = t.toID['0'+byte(d)]
	}
	return out
}

// Alphabet returns a copy of the alphabet bytes in id order.
func (t *Tokenizer) Alphabet() []byte { return append([]byte(nil), t.chars...) }
