package pack

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/vocab"
)

// testLM returns a tiny untrained transformer: deterministic, cheap to
// build, and — unlike UniformLM — a BatchLM, so the lock-step and
// speculative paths are exercised too.
func testLM(t *testing.T, vocabSize int) core.LM {
	t.Helper()
	m, err := nn.New(nn.Config{Vocab: vocabSize, Ctx: 64, Dim: 16, Heads: 2, Layers: 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	return core.WrapNN(m)
}

func mustCompile(t *testing.T, def Definition) *Compiled {
	t.Helper()
	c, err := Compile(def)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTelemetrySlotsMatchDirectGrammar(t *testing.T) {
	def := TelemetryDefinition(nil, "", 0.9, nil)
	slots, err := def.Slots()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.TelemetryGrammar(dataset.Schema(), dataset.CoarseFields(), dataset.FineField)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(slots, direct) {
		t.Fatalf("pack grammar %v != core.TelemetryGrammar %v", slots, direct)
	}
	tok, err := def.Tokenizer()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tok.Size(), vocab.Telemetry().Size(); got != want {
		t.Fatalf("pack tokenizer size %d != vocab.Telemetry %d", got, want)
	}
}

// TestTelemetryPackMatchesDirect is the bit-exactness golden: the telemetry
// pack must decode byte-identically to the pre-pack construction path on the
// solo guided path, the lock-step GEMM path, and the speculative path.
func TestTelemetryPackMatchesDirect(t *testing.T) {
	schema := dataset.Schema()
	rs, err := rules.ParseRuleSet(`
const BW = 60
rule c4: forall t in 0..4: 0 <= I[t] and I[t] <= BW
rule c5: sum(I) == TotalIngress
rule c6: Congestion > 0 -> max(I) >= BW/2
`, schema)
	if err != nil {
		t.Fatal(err)
	}
	lm := testLM(t, vocab.Telemetry().Size())

	// Direct: the seed construction path, as cmd/lejitd's file mode builds it.
	slots, err := core.TelemetryGrammar(schema, dataset.CoarseFields(), dataset.FineField)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.NewEngine(core.Config{
		LM: lm, Tok: vocab.Telemetry(), Schema: schema,
		Rules: rs, Slots: slots, Mode: core.LeJIT, Temperature: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}

	def := TelemetryDefinition(lm, rs.String(), 0.9, nil)
	pk := mustCompile(t, def)
	if pk.Epoch == direct.Fingerprint() {
		t.Fatal("pack epoch should differ from the unnamed engine's (pack name is fingerprinted)")
	}

	prompts := []rules.Record{
		{"TotalIngress": {120}, "Congestion": {40}, "Retrans": {10}, "Egress": {80}, "Conns": {12}},
		{"TotalIngress": {30}, "Congestion": {0}, "Retrans": {0}, "Egress": {20}, "Conns": {4}},
		{"TotalIngress": {200}, "Congestion": {5}, "Retrans": {2}, "Egress": {150}, "Conns": {20}},
		{"TotalIngress": {75}, "Congestion": {12}, "Retrans": {3}, "Egress": {60}, "Conns": {9}},
	}
	paths := []struct {
		name string
		run  func(e *core.Engine) []rules.Record
	}{
		{"solo", func(e *core.Engine) []rules.Record {
			out := make([]rules.Record, len(prompts))
			for i, p := range prompts {
				res, err := e.DecodeRequests(context.Background(), []core.BatchRequest{{Prompt: p}}, 1, int64(100+i), nil)
				if err != nil || res[0].Err != nil {
					t.Fatalf("solo decode %d: %v %v", i, err, res[0].Err)
				}
				out[i] = res[0].Res.Rec
			}
			return out
		}},
		{"lockstep", func(e *core.Engine) []rules.Record {
			reqs := make([]core.BatchRequest, len(prompts))
			for i, p := range prompts {
				reqs[i] = core.BatchRequest{Prompt: p}
			}
			res, err := e.DecodeRequests(context.Background(), reqs, 2, 42, nil)
			if err != nil {
				t.Fatal(err)
			}
			out := make([]rules.Record, len(prompts))
			for i := range res {
				if res[i].Err != nil {
					t.Fatalf("lockstep decode %d: %v", i, res[i].Err)
				}
				out[i] = res[i].Res.Rec
			}
			return out
		}},
		{"speculative", func(e *core.Engine) []rules.Record {
			k := 8
			reqs := make([]core.BatchRequest, len(prompts))
			for i, p := range prompts {
				reqs[i] = core.BatchRequest{Prompt: p, Lookahead: &k}
			}
			res, err := e.DecodeRequests(context.Background(), reqs, 2, 42, nil)
			if err != nil {
				t.Fatal(err)
			}
			out := make([]rules.Record, len(prompts))
			for i := range res {
				if res[i].Err != nil {
					t.Fatalf("speculative decode %d: %v", i, res[i].Err)
				}
				out[i] = res[i].Res.Rec
			}
			return out
		}},
	}
	for _, path := range paths {
		want := path.run(direct)
		got := path.run(pk.Engine)
		for i := range want {
			if !reflect.DeepEqual(want[i], got[i]) {
				t.Errorf("%s path, record %d: pack %v != direct %v", path.name, i, got[i], want[i])
			}
		}
	}
}

func TestBuiltinExampleCorporaComply(t *testing.T) {
	for _, def := range []Definition{RouterCfgDefinition(nil), FinComplianceDefinition(nil)} {
		rs, err := rules.ParseRuleSet(def.RuleText, def.Schema)
		if err != nil {
			t.Fatalf("%s: %v", def.Name, err)
		}
		if len(def.Examples) == 0 {
			t.Fatalf("%s: no examples", def.Name)
		}
		for i, rec := range def.Examples {
			if err := def.Schema.Validate(rec); err != nil {
				t.Fatalf("%s example %d: %v", def.Name, i, err)
			}
			viol, err := rs.Violations(rec)
			if err != nil {
				t.Fatalf("%s example %d: %v", def.Name, i, err)
			}
			if len(viol) > 0 {
				t.Fatalf("%s example %d violates: %v (%v)", def.Name, i, viol, rec)
			}
		}
	}
}

// TestDomainPacksDecodeEndToEnd compiles both new packs and decodes prompts
// from their example corpora: every output must be rule-compliant.
func TestDomainPacksDecodeEndToEnd(t *testing.T) {
	for _, def := range []Definition{RouterCfgDefinition(nil), FinComplianceDefinition(nil)} {
		def := def
		t.Run(def.Name, func(t *testing.T) {
			pk := mustCompile(t, def)
			for i := 0; i < 6; i++ {
				prompt := def.PromptOf(def.Examples[i])
				res, err := pk.Engine.DecodeRequests(context.Background(),
					[]core.BatchRequest{{Prompt: prompt}}, 1, int64(i), nil)
				if err != nil {
					t.Fatal(err)
				}
				if res[0].Err != nil {
					t.Fatalf("decode %d (prompt %v): %v", i, prompt, res[0].Err)
				}
				rec := res[0].Res.Rec
				if err := pk.Schema.Validate(rec); err != nil {
					t.Fatalf("decode %d: %v", i, err)
				}
				viol, err := pk.Rules.Violations(rec)
				if err != nil {
					t.Fatal(err)
				}
				if len(viol) > 0 {
					t.Fatalf("decode %d violates: %v (%v)", i, viol, rec)
				}
				if _, err := pk.FormatRecord(rec); err != nil {
					t.Fatalf("decode %d: %v", i, err)
				}
			}
		})
	}
}

func TestCompileRejectsBadPacks(t *testing.T) {
	base := RouterCfgDefinition(nil)
	cases := []struct {
		name  string
		tweak func(*Definition)
	}{
		{"bad name", func(d *Definition) { d.Name = "Bad Name!" }},
		{"no schema", func(d *Definition) { d.Schema = nil }},
		{"bad rules", func(d *Definition) { d.RuleText = "rule x: nonsense ===" }},
		{"unknown rule field", func(d *Definition) { d.RuleText = "rule x: Nope >= 1" }},
		{"unsat rules", func(d *Definition) { d.RuleText = "rule a: NumAcls >= 3\nrule b: NumAcls <= 2" }},
		{"sep outside alphabet", func(d *Definition) { d.Grammar[0].After = '@' }},
		{"grammar field missing", func(d *Definition) { d.Grammar[0].Field = "Nope" }},
		{"noncompliant example", func(d *Definition) {
			d.Examples = []rules.Record{{
				"NumAcls": {1}, "RefAcl": {5, 0, 0, 0}, "PrefixLen": {24, 0, 0, 0}, "Action": {1, 0, 0, 0},
			}}
		}},
	}
	for _, tc := range cases {
		def := RouterCfgDefinition(nil)
		def.Grammar = append([]GrammarField(nil), base.Grammar...)
		tc.tweak(&def)
		if _, err := Compile(def); err == nil {
			t.Errorf("%s: Compile accepted a bad pack", tc.name)
		}
	}
}

func TestTrainLMProducesServableModel(t *testing.T) {
	def := FinComplianceDefinition(nil)
	def.Examples = FinComplianceExamples(16, 3)
	if err := TrainLM(&def, TrainLMConfig{Dim: 16, Epochs: 1, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if def.LM == nil {
		t.Fatal("TrainLM left LM nil")
	}
	if _, ok := def.LM.(core.BatchLM); !ok {
		t.Fatal("trained LM is not a BatchLM")
	}
	pk := mustCompile(t, def)
	prompt := def.PromptOf(def.Examples[0])
	res, err := pk.Engine.DecodeRequests(context.Background(), []core.BatchRequest{{Prompt: prompt}}, 1, 1, nil)
	if err != nil || res[0].Err != nil {
		t.Fatalf("decode on trained LM: %v %v", err, res[0].Err)
	}
	viol, err := pk.Rules.Violations(res[0].Res.Rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(viol) > 0 {
		t.Fatalf("trained-LM decode violates: %v", viol)
	}
}

func TestFromEnginePreservesEngine(t *testing.T) {
	schema := dataset.Schema()
	slots, err := core.TelemetryGrammar(schema, dataset.CoarseFields(), dataset.FineField)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(core.Config{
		LM: UniformLM(vocab.Telemetry().Size()), Tok: vocab.Telemetry(), Schema: schema,
		Slots: slots, Mode: core.LeJIT,
	})
	if err != nil {
		t.Fatal(err)
	}
	pk, err := FromEngine("default", eng, nil, schema)
	if err != nil {
		t.Fatal(err)
	}
	if pk.Engine != eng {
		t.Fatal("FromEngine must wrap the engine, not rebuild it")
	}
	if pk.Epoch != eng.Fingerprint() {
		t.Fatal("epoch != engine fingerprint")
	}
	if _, err := FromEngine("Bad Name", eng, nil, schema); err == nil {
		t.Fatal("FromEngine accepted a bad name")
	}
}

func TestPacksHaveDistinctEpochs(t *testing.T) {
	epochs := map[uint64]string{}
	for _, def := range []Definition{
		TelemetryDefinition(nil, "", 0.9, nil),
		RouterCfgDefinition(nil),
		FinComplianceDefinition(nil),
	} {
		pk := mustCompile(t, def)
		if prev, dup := epochs[pk.Epoch]; dup {
			t.Fatalf("packs %s and %s share epoch %016x", prev, def.Name, pk.Epoch)
		}
		epochs[pk.Epoch] = def.Name
	}
}

func TestFormatRecordRoundTrip(t *testing.T) {
	def := RouterCfgDefinition(nil)
	pk := mustCompile(t, def)
	line, err := pk.FormatRecord(def.Examples[0])
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%d|", def.Examples[0]["NumAcls"][0])
	if line[:len(want)] != want {
		t.Fatalf("line %q does not start with %q", line, want)
	}
	if line[len(line)-1] != '\n' {
		t.Fatalf("line %q not newline-terminated", line)
	}
	if _, err := pk.Tok.EncodeSeq(line); err != nil {
		t.Fatalf("formatted line not encodable by pack tokenizer: %v", err)
	}
}
