package pack

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/prefixcache"
	"repro/internal/rules"
)

// maxRuleSourceBytes caps a reloaded (or loaded) rule file; a multi-megabyte
// "rule set" is an attack, not a policy.
const maxRuleSourceBytes = 64 << 10

// Registry holds the served packs. Reads (Get, per-request resolution) are
// lock-free after an RLock'd name lookup: each entry publishes its current
// Compiled through an atomic pointer, so a hot reload swaps the whole
// immutable bundle at once — a request admitted before the swap keeps
// decoding on the engine it resolved, a request admitted after sees only the
// new one, and nobody observes a torn mix.
type Registry struct {
	// cacheBytes is the per-pack prefix-cache budget (0 disables caching).
	// Each pack owns its cache: snapshots never migrate across packs, and
	// the cache survives reloads — the new epoch simply invalidates stale
	// entries on sight (prefixcache drop-on-sight).
	cacheBytes int64

	mu      sync.RWMutex
	entries map[string]*entry
}

type entry struct {
	cur   atomic.Pointer[Compiled]
	cache *prefixcache.Cache
	// reloadMu serializes reloads of this pack so two concurrent reloads
	// cannot interleave their compile-then-swap sequences.
	reloadMu   sync.Mutex
	reloads    atomic.Uint64
	reloadErrs atomic.Uint64
}

// NewRegistry builds an empty registry. prefixCacheBytes is the per-pack
// prefix-cache budget in bytes (0 disables caching).
func NewRegistry(prefixCacheBytes int64) *Registry {
	return &Registry{cacheBytes: prefixCacheBytes, entries: map[string]*entry{}}
}

// Register adds a compiled pack under its definition name. When the registry
// was built with a cache budget, the pack gets its own prefix cache,
// attached to the engine (and inherited by every engine a reload builds).
func (r *Registry) Register(c *Compiled) error {
	if c == nil || c.Engine == nil {
		return fmt.Errorf("pack: registering a nil pack")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	name := c.Def.Name
	if _, dup := r.entries[name]; dup {
		return fmt.Errorf("pack: %q already registered", name)
	}
	e := &entry{}
	if r.cacheBytes > 0 {
		e.cache = prefixcache.New(r.cacheBytes)
		c.Engine.SetPrefixCache(e.cache)
	}
	e.cur.Store(c)
	r.entries[name] = e
	return nil
}

// Get returns the current serving form of the named pack. The returned
// bundle is immutable; callers decode on it even if a reload swaps the
// registry entry mid-flight.
func (r *Registry) Get(name string) (*Compiled, bool) {
	r.mu.RLock()
	e := r.entries[name]
	r.mu.RUnlock()
	if e == nil {
		return nil, false
	}
	return e.cur.Load(), true
}

// Names returns the registered pack names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len reports the number of registered packs.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Info is one pack's listing row (/v1/packs).
type Info struct {
	Name         string
	Version      string
	Epoch        uint64
	Generation   int
	Rules        int
	Fields       int
	Reloads      uint64
	ReloadErrors uint64
}

// List describes every registered pack, sorted by name.
func (r *Registry) List() []Info {
	names := r.Names()
	out := make([]Info, 0, len(names))
	for _, n := range names {
		r.mu.RLock()
		e := r.entries[n]
		r.mu.RUnlock()
		c := e.cur.Load()
		inf := Info{
			Name: n, Version: c.Def.Version, Epoch: c.Epoch, Generation: c.Generation,
			Reloads: e.reloads.Load(), ReloadErrors: e.reloadErrs.Load(),
		}
		if c.Rules != nil {
			inf.Rules = c.Rules.Len()
		}
		if c.Schema != nil {
			inf.Fields = len(c.Schema.Fields())
		}
		out = append(out, inf)
	}
	return out
}

// ErrUnknownPack reports a name that resolves to no registered pack.
type ErrUnknownPack struct{ Name string }

func (e ErrUnknownPack) Error() string { return fmt.Sprintf("pack: unknown pack %q", e.Name) }

// Reload parses ruleText against the pack's schema, builds a fresh engine
// from the current one's configuration (full rule recompilation plus the
// satisfiability pre-check, all off the serving hot path), and atomically
// swaps it in. The schema, grammar, tokenizer, and LM are fixed for the
// pack's lifetime — only the rules swap, which is what makes in-flight
// requests on the old engine sound. An empty ruleText clears the rules.
// On any error the current bundle keeps serving untouched.
func (r *Registry) Reload(name, ruleText string) (*Compiled, error) {
	r.mu.RLock()
	e := r.entries[name]
	r.mu.RUnlock()
	if e == nil {
		return nil, ErrUnknownPack{Name: name}
	}
	e.reloadMu.Lock()
	defer e.reloadMu.Unlock()
	next, err := reloadCompile(e.cur.Load(), ruleText)
	if err != nil {
		e.reloadErrs.Add(1)
		return nil, fmt.Errorf("pack: reloading %q: %w", name, err)
	}
	e.cur.Store(next)
	e.reloads.Add(1)
	return next, nil
}

// reloadCompile builds the post-reload bundle without touching the current
// one. The new engine shares the LM weights and — via the copied config —
// the pack's prefix cache; its fingerprint differs from the old engine's
// exactly when the rule text changed, so stale cached snapshots die on
// lookup rather than by sweep.
func reloadCompile(cur *Compiled, ruleText string) (*Compiled, error) {
	if len(ruleText) > maxRuleSourceBytes {
		return nil, fmt.Errorf("rule source is %d bytes (max %d)", len(ruleText), maxRuleSourceBytes)
	}
	var rs *rules.RuleSet
	if strings.TrimSpace(ruleText) != "" {
		var err error
		rs, err = rules.ParseRuleSet(ruleText, cur.Schema)
		if err != nil {
			return nil, err
		}
	}
	cfg := cur.Engine.Configuration()
	cfg.Rules = rs
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	def := cur.Def
	def.RuleText = ruleText
	return &Compiled{
		Def: def, Tok: cur.Tok, Schema: cur.Schema, Rules: rs,
		Engine: eng, Epoch: eng.Fingerprint(), Generation: cur.Generation + 1,
	}, nil
}

// RuntimeStats is one pack's operational counters for the metrics layer.
type RuntimeStats struct {
	Prefix       prefixcache.Stats
	Reloads      uint64
	ReloadErrors uint64
}

// Stats snapshots every pack's runtime counters, keyed by name.
func (r *Registry) Stats() map[string]RuntimeStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]RuntimeStats, len(r.entries))
	for n, e := range r.entries {
		st := RuntimeStats{Reloads: e.reloads.Load(), ReloadErrors: e.reloadErrs.Load()}
		if e.cache != nil {
			st.Prefix = e.cache.Stats()
		}
		out[n] = st
	}
	return out
}
