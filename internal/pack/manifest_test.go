package pack

import (
	"strings"
	"testing"
)

const routerManifest = `# routercfg, as a manifest
pack    routercfg
version v2
alphabet "0123456789;|\n"
scalar  NumAcls 1 6 after "|"
vector  RefAcl 4 0 6 sep ";" after "|"
vector  PrefixLen 4 0 32 sep ";" after "|"
vector  Action 4 0 1 sep ";" after "\n"
prompt  NumAcls
`

func TestParseManifestRoundTrip(t *testing.T) {
	def, err := ParseManifest(routerManifest)
	if err != nil {
		t.Fatal(err)
	}
	builtin := RouterCfgDefinition(nil)
	if def.Name != builtin.Name || def.Version != "v2" || def.Alphabet != builtin.Alphabet {
		t.Fatalf("identity mismatch: %q %q %q", def.Name, def.Version, def.Alphabet)
	}
	slots, err := def.Slots()
	if err != nil {
		t.Fatal(err)
	}
	builtinSlots, err := builtin.Slots()
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != len(builtinSlots) {
		t.Fatalf("slot count %d != %d", len(slots), len(builtinSlots))
	}
	for i := range slots {
		if slots[i] != builtinSlots[i] {
			t.Fatalf("slot %d: %+v != %+v", i, slots[i], builtinSlots[i])
		}
	}
}

func TestLoadManifestPlusRules(t *testing.T) {
	pk, err := Load(routerManifest, RouterCfgRules, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pk.Def.Name != RouterCfgName || pk.Rules == nil || len(pk.Rules.Rules) == 0 {
		t.Fatalf("loaded pack incomplete: %+v", pk.Def)
	}
}

func TestParseManifestKernelDirectives(t *testing.T) {
	src := routerManifest + "kernel_workers 4\nquantize snap\n"
	def, err := ParseManifest(src)
	if err != nil {
		t.Fatal(err)
	}
	if def.KernelWorkers != 4 || def.Quantize != "snap" {
		t.Fatalf("kernel directives not applied: workers=%d quantize=%q", def.KernelWorkers, def.Quantize)
	}
	def, err = ParseManifest(routerManifest + "quantize off\n")
	if err != nil {
		t.Fatal(err)
	}
	if def.Quantize != "" {
		t.Fatalf("quantize off parsed as %q, want empty", def.Quantize)
	}
	def, err = ParseManifest(routerManifest)
	if err != nil {
		t.Fatal(err)
	}
	if def.KernelWorkers != 0 || def.Quantize != "" {
		t.Fatalf("directives defaulted to workers=%d quantize=%q, want zero values", def.KernelWorkers, def.Quantize)
	}
}

func TestParseManifestErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"no pack", "alphabet \"01\"\nscalar X 0 9"},
		{"no alphabet", "pack p\nscalar X 0 9"},
		{"no fields", "pack p\nalphabet \"01\""},
		{"unknown directive", "pack p\nwat"},
		{"bad alphabet quote", "pack p\nalphabet 01"},
		{"alphabet too long", "pack p\nalphabet \"" + strings.Repeat("a", 65) + "\""},
		{"dup field", "pack p\nalphabet \"0123456789,\\n\"\nscalar X 0 9\nscalar X 0 9"},
		{"bad number", "pack p\nalphabet \"0123456789,\\n\"\nscalar X zero 9"},
		{"negative lo", "pack p\nalphabet \"0123456789,\\n\"\nscalar X -1 9"},
		{"hi below lo", "pack p\nalphabet \"0123456789,\\n\"\nscalar X 9 1"},
		{"hi too big", "pack p\nalphabet \"0123456789,\\n\"\nscalar X 0 2000000"},
		{"vector len zero", "pack p\nalphabet \"0123456789,\\n\"\nvector X 0 0 9"},
		{"vector too long", "pack p\nalphabet \"0123456789,\\n\"\nvector X 99 0 9"},
		{"multichar sep", "pack p\nalphabet \"0123456789,\\n\"\nscalar X 0 9 sep \",,\""},
		{"dangling option", "pack p\nalphabet \"0123456789,\\n\"\nscalar X 0 9 sep"},
		{"unknown option", "pack p\nalphabet \"0123456789,\\n\"\nscalar X 0 9 wat \",\""},
		{"undeclared prompt", "pack p\nalphabet \"0123456789,\\n\"\nscalar X 0 9\nprompt Y"},
		{"kernel_workers zero", "pack p\nalphabet \"0123456789,\\n\"\nscalar X 0 9\nkernel_workers 0"},
		{"kernel_workers huge", "pack p\nalphabet \"0123456789,\\n\"\nscalar X 0 9\nkernel_workers 999"},
		{"kernel_workers junk", "pack p\nalphabet \"0123456789,\\n\"\nscalar X 0 9\nkernel_workers four"},
		{"quantize junk", "pack p\nalphabet \"0123456789,\\n\"\nscalar X 0 9\nquantize int4"},
		{"too many fields", func() string {
			var b strings.Builder
			b.WriteString("pack p\nalphabet \"0123456789,\\n\"\n")
			for i := 0; i < maxFields+1; i++ {
				b.WriteString("scalar F")
				b.WriteString(strings.Repeat("x", i%3))
				b.WriteString(string(rune('a'+i%26)) + string(rune('a'+i/26)))
				b.WriteString(" 0 9\n")
			}
			return b.String()
		}()},
		{"oversized", strings.Repeat("#", maxManifestBytes+1)},
	}
	for _, tc := range cases {
		if _, err := ParseManifest(tc.src); err == nil {
			t.Errorf("%s: ParseManifest accepted %q", tc.name, tc.src)
		}
	}
}

func TestLoadRejectsOversizedRules(t *testing.T) {
	if _, err := Load(routerManifest, strings.Repeat("#", maxRuleSourceBytes+1), nil); err == nil {
		t.Fatal("oversized rule source accepted")
	}
}
