package pack

import (
	"strings"
	"testing"
	"time"
)

// FuzzLoadPack holds the loader to its contract: arbitrary manifest and
// rule-file bytes either produce a working pack or error cleanly — never a
// panic, and never a bundle that poisons a registry. Solver budgets are
// pinned tight so adversarial-but-satisfiable rule sets cannot stall the
// fuzzer in the satisfiability pre-check.
func FuzzLoadPack(f *testing.F) {
	f.Add(routerManifest, RouterCfgRules)
	f.Add(routerManifest, "")
	f.Add(routerManifest, "rule x: Nope >= 1")
	f.Add("pack p\nalphabet \"0123456789,\\n\"\nscalar X 0 9\n", "rule lo: X >= 1")
	f.Add("pack p\nalphabet \"0123456789,\\n\"\nvector V 3 0 9\nprompt V\n", "rule s: sum(V) <= 20")
	f.Add("pack p\nalphabet \"abc\"\nscalar X 0 9\n", "")        // digits missing from alphabet
	f.Add("pack p\nalphabet \"0123456789\"\nscalar X 0 9\n", "") // separator missing
	f.Add("wat\n\x00\xff", "const = =")
	f.Fuzz(func(t *testing.T, manifest, ruleSrc string) {
		def, err := ParseManifest(manifest)
		if err != nil {
			return
		}
		if len(ruleSrc) > maxRuleSourceBytes {
			return
		}
		def.RuleText = ruleSrc
		def.MaxNodes = 10_000
		def.SolverTimeout = 50 * time.Millisecond
		pk, err := compile(*def, true)
		if err != nil {
			return
		}
		// A pack that compiled must be registrable and introspectable.
		r := NewRegistry(0)
		if err := r.Register(pk); err != nil {
			t.Fatalf("compiled pack failed to register: %v", err)
		}
		got, ok := r.Get(pk.Def.Name)
		if !ok || got.Engine == nil || got.Schema == nil || got.Tok == nil {
			t.Fatalf("registered pack came back torn: %+v", got)
		}
		for _, info := range r.List() {
			if info.Name == "" || info.Epoch == 0 {
				t.Fatalf("bad Info from fuzzed pack: %+v", info)
			}
		}
		// Reloading the same rule text must succeed (same inputs, same path)
		// unless the budget-limited sat pre-check flakes — an error is
		// acceptable there only if it leaves the old bundle serving.
		if _, err := r.Reload(pk.Def.Name, ruleSrc); err != nil {
			if cur, ok := r.Get(pk.Def.Name); !ok || cur != got {
				t.Fatalf("failed reload did not keep the old bundle: %v", err)
			}
		}
		_ = strings.TrimSpace(ruleSrc)
	})
}
