package pack

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/rules"
)

// The fincompliance pack: threshold/aggregation compliance rules in the
// shape of "Neuro-Symbolic Compliance" (PAPERS.md) — per-category limits, a
// sum-coupled portfolio cap, and conditional escalation thresholds, enforced
// during generation instead of audited after it.
//
// A record is one portfolio snapshot over FinCategories exposure categories:
//
//	TotalExposure,RiskScore,Escalate | Exposure[0],..,Exposure[3]
const (
	FinComplianceName = "fincompliance"
	// FinCategories is the number of exposure categories.
	FinCategories = 4
	// FinCategoryMax is the per-category exposure limit (CATMAX).
	FinCategoryMax = 80
	// FinPortfolioCap is the portfolio-wide exposure cap (CAP).
	FinPortfolioCap = 300
)

// FinComplianceRules is the pack's rule file.
//
//   - catlimit: no single category exceeds CATMAX.
//   - conserve: the reported total is the sum of the categories
//     (an aggregation constraint no grammar mask can track).
//   - cap: portfolio-wide exposure cap.
//   - riskesc:  a high risk score forces the escalation flag.
//   - concesc:  a concentration spike in any category forces it too.
const FinComplianceRules = `
const CATMAX = 80
const CAP = 300
rule catlimit: forall t in 0..3: Exposure[t] <= CATMAX
rule conserve: sum(Exposure) == TotalExposure
rule cap:      TotalExposure <= CAP
rule riskesc:  RiskScore >= 70 -> Escalate >= 1
rule concesc:  max(Exposure) >= 75 -> Escalate >= 1
`

// FinComplianceSchema returns the pack's schema. TotalExposure's domain
// upper bound is the arithmetic maximum (4×80); the tighter portfolio cap
// lives in the rules, where a reload can move it.
func FinComplianceSchema() *rules.Schema {
	return rules.MustSchema(
		rules.Field{Name: "TotalExposure", Kind: rules.Scalar, Lo: 0, Hi: FinCategories * FinCategoryMax},
		rules.Field{Name: "RiskScore", Kind: rules.Scalar, Lo: 0, Hi: 100},
		rules.Field{Name: "Escalate", Kind: rules.Scalar, Lo: 0, Hi: 1},
		rules.Field{Name: "Exposure", Kind: rules.Vector, Len: FinCategories, Lo: 0, Hi: 100},
	)
}

// FinComplianceDefinition bundles the fincompliance domain. lm may be nil
// (UniformLM); the demo/bench layers train a tiny transformer on the
// example corpus (TrainLM).
func FinComplianceDefinition(lm core.LM) Definition {
	return Definition{
		Name: FinComplianceName, Version: "v1",
		Schema:   FinComplianceSchema(),
		RuleText: FinComplianceRules,
		Alphabet: "0123456789,|\n",
		Grammar: []GrammarField{
			{Field: "TotalExposure", After: ','},
			{Field: "RiskScore", After: ','},
			{Field: "Escalate", After: '|'},
			{Field: "Exposure", ElemSep: ',', After: '\n'},
		},
		PromptFields: []string{"TotalExposure", "RiskScore", "Escalate"},
		Examples:     FinComplianceExamples(200, 23),
		LM:           lm,
		Mode:         core.LeJIT,
		Temperature:  0.9,
	}
}

// FinComplianceExamples generates n rule-compliant portfolio snapshots
// deterministically from seed. Per-category draws stay at or below 72 —
// under both the shipped CATMAX (80) and the tightened one the benchmark
// hot-reloads (75) — so the same prompts remain feasible across a reload;
// totals stay under the cap by rejection-free construction.
func FinComplianceExamples(n int, seed int64) []rules.Record {
	rng := rand.New(rand.NewSource(seed))
	out := make([]rules.Record, 0, n)
	for i := 0; i < n; i++ {
		exp := make([]int64, FinCategories)
		var total, maxE int64
		for t := range exp {
			exp[t] = rng.Int63n(73)
			total += exp[t]
			if exp[t] > maxE {
				maxE = exp[t]
			}
		}
		risk := rng.Int63n(101)
		var esc int64
		if risk >= 70 || maxE >= 75 || rng.Intn(3) == 0 {
			esc = 1
		}
		out = append(out, rules.Record{
			"TotalExposure": {total}, "RiskScore": {risk}, "Escalate": {esc},
			"Exposure": exp,
		})
	}
	return out
}
