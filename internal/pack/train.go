package pack

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/rules"
)

// TrainLMConfig sizes the tiny per-pack transformer the demo and benchmark
// layers train on a pack's example corpus. The zero value gives the
// demo-scale model (dim 32, 1 layer, 2 heads, 2 epochs, context 48).
type TrainLMConfig struct {
	Dim, Heads, Layers int
	Ctx                int
	Epochs             int
	Seed               int64
	Logf               func(format string, args ...any)
}

func (c *TrainLMConfig) fill() {
	if c.Dim == 0 {
		c.Dim = 32
	}
	if c.Heads == 0 {
		c.Heads = 2
	}
	if c.Layers == 0 {
		c.Layers = 1
	}
	if c.Ctx == 0 {
		c.Ctx = 48
	}
	if c.Epochs == 0 {
		c.Epochs = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// TrainLM trains a tiny transformer on the definition's example corpus (in
// the pack's own text format) and installs it as the definition's LM. It is
// how the demo daemon and the pack benchmark give the two non-telemetry
// packs a statistical model without shipping weights.
func TrainLM(def *Definition, tc TrainLMConfig) error {
	tc.fill()
	if len(def.Examples) == 0 {
		return fmt.Errorf("pack %s: no examples to train on", def.Name)
	}
	tok, err := def.Tokenizer()
	if err != nil {
		return err
	}
	slots, err := def.Slots()
	if err != nil {
		return err
	}
	seqs := make([][]int, 0, len(def.Examples))
	for i, rec := range def.Examples {
		line, err := formatBySlots(slots, rec)
		if err != nil {
			return fmt.Errorf("pack %s: example %d: %w", def.Name, i, err)
		}
		seq, err := tok.EncodeSeq(line)
		if err != nil {
			return fmt.Errorf("pack %s: example %d: %w", def.Name, i, err)
		}
		if len(seq) > tc.Ctx {
			return fmt.Errorf("pack %s: example %d needs %d tokens, context is %d", def.Name, i, len(seq), tc.Ctx)
		}
		seqs = append(seqs, seq)
	}
	m, err := nn.New(nn.Config{
		Vocab: tok.Size(), Ctx: tc.Ctx,
		Dim: tc.Dim, Heads: tc.Heads, Layers: tc.Layers,
	}, tc.Seed)
	if err != nil {
		return err
	}
	if _, err := m.Train(seqs, nn.TrainConfig{Epochs: tc.Epochs, Seed: tc.Seed, LogEvery: 200, Logf: tc.Logf}); err != nil {
		return err
	}
	def.LM = core.WrapNN(m)
	return nil
}

// formatBySlots renders a record through an explicit slot list (Compiled has
// FormatRecord; this is the pre-compile form TrainLM needs).
func formatBySlots(slots []core.Slot, rec rules.Record) (string, error) {
	var b []byte
	for _, sl := range slots {
		vs, ok := rec[sl.Field]
		if !ok || sl.Index >= len(vs) {
			return "", fmt.Errorf("record missing %s[%d]", sl.Field, sl.Index)
		}
		b = strconv.AppendInt(b, vs[sl.Index], 10)
		b = append(b, sl.Sep)
	}
	return string(b), nil
}
