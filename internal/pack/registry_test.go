package pack

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

func newTestRegistry(t *testing.T, cacheBytes int64, defs ...Definition) *Registry {
	t.Helper()
	r := NewRegistry(cacheBytes)
	for _, def := range defs {
		if err := r.Register(mustCompile(t, def)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestRegistryRegisterGetList(t *testing.T) {
	r := newTestRegistry(t, 0, RouterCfgDefinition(nil), FinComplianceDefinition(nil))
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if got := r.Names(); !(len(got) == 2 && got[0] == FinComplianceName && got[1] == RouterCfgName) {
		t.Fatalf("Names = %v, want sorted [fincompliance routercfg]", got)
	}
	pk, ok := r.Get(RouterCfgName)
	if !ok || pk.Def.Name != RouterCfgName {
		t.Fatalf("Get(routercfg) = %v, %v", pk, ok)
	}
	if _, ok := r.Get("nope"); ok {
		t.Fatal("Get(nope) succeeded")
	}
	if err := r.Register(mustCompile(t, RouterCfgDefinition(nil))); err == nil {
		t.Fatal("duplicate Register accepted")
	}
	for _, info := range r.List() {
		if info.Generation != 1 || info.Epoch == 0 || info.Fields == 0 || info.Rules == 0 {
			t.Fatalf("bad Info: %+v", info)
		}
	}
}

func TestRegistryReload(t *testing.T) {
	r := newTestRegistry(t, 0, FinComplianceDefinition(nil))
	before, _ := r.Get(FinComplianceName)

	// Unknown pack.
	var unknown ErrUnknownPack
	if _, err := r.Reload("nope", ""); !errors.As(err, &unknown) {
		t.Fatalf("Reload(nope) = %v, want ErrUnknownPack", err)
	}

	// Bad rule text: error, current bundle keeps serving, error counter bumps.
	if _, err := r.Reload(FinComplianceName, "rule x: Nope >= 1"); err == nil {
		t.Fatal("Reload with bad rules succeeded")
	}
	if _, err := r.Reload(FinComplianceName, "rule a: RiskScore >= 3\nrule b: RiskScore <= 2"); err == nil ||
		!strings.Contains(err.Error(), "unsat") {
		t.Fatalf("Reload with unsat rules: %v, want unsat error", err)
	}
	cur, _ := r.Get(FinComplianceName)
	if cur != before {
		t.Fatal("failed reload replaced the serving bundle")
	}
	st := r.Stats()[FinComplianceName]
	if st.Reloads != 0 || st.ReloadErrors != 2 {
		t.Fatalf("stats after failed reloads: %+v", st)
	}

	// Good reload: new epoch, generation bump, new rules enforced.
	tightened := strings.ReplaceAll(FinComplianceRules, "CATMAX = 80", "CATMAX = 75")
	if _, err := r.Reload(FinComplianceName, tightened); err != nil {
		t.Fatal(err)
	}
	cur, _ = r.Get(FinComplianceName)
	if cur == before || cur.Epoch == before.Epoch || cur.Generation != 2 {
		t.Fatalf("reload did not swap: gen=%d epoch %016x vs %016x", cur.Generation, cur.Epoch, before.Epoch)
	}
	if !strings.Contains(cur.Rules.String(), "75") {
		t.Fatalf("reloaded rules = %q, want CATMAX 75", cur.Rules.String())
	}
	// The pre-reload bundle is untouched — in-flight requests finish on it.
	if before.Generation != 1 || !strings.Contains(before.Rules.String(), "80") {
		t.Fatal("reload mutated the old bundle")
	}
	// Decode on the reloaded engine obeys the tightened rules.
	res, err := cur.Engine.DecodeRequests(context.Background(),
		[]core.BatchRequest{{Prompt: cur.Def.PromptOf(FinComplianceExamples(1, 99)[0])}}, 1, 5, nil)
	if err != nil || res[0].Err != nil {
		t.Fatalf("decode after reload: %v %v", err, res[0].Err)
	}
	for _, v := range res[0].Res.Rec["Exposure"] {
		if v > 75 {
			t.Fatalf("post-reload decode has Exposure %d > 75", v)
		}
	}

	// Reloading identical text still swaps (same epoch, generation bumps).
	prev := cur
	if _, err := r.Reload(FinComplianceName, tightened); err != nil {
		t.Fatal(err)
	}
	cur, _ = r.Get(FinComplianceName)
	if cur.Epoch != prev.Epoch || cur.Generation != 3 {
		t.Fatalf("identical-text reload: gen=%d, epoch changed=%v", cur.Generation, cur.Epoch != prev.Epoch)
	}
}

func TestRegistryReloadPreservesBudgets(t *testing.T) {
	r := newTestRegistry(t, 1<<20, RouterCfgDefinition(nil))
	pk, _ := r.Get(RouterCfgName)
	pk.Engine.SetSolverBudget(12345, 0)
	if _, err := r.Reload(RouterCfgName, RouterCfgRules); err != nil {
		t.Fatal(err)
	}
	cur, _ := r.Get(RouterCfgName)
	if got := cur.Engine.Configuration().MaxNodes; got != 12345 {
		t.Fatalf("MaxNodes after reload = %d, want 12345", got)
	}
	if cur.Engine.PrefixCache() == nil {
		t.Fatal("reload dropped the per-pack prefix cache")
	}
	if cur.Engine.PrefixCache() != pk.Engine.PrefixCache() {
		t.Fatal("reload created a new prefix cache instead of sharing the pack's")
	}
}

func TestRegistryConcurrentGetAndReload(t *testing.T) {
	r := newTestRegistry(t, 0, RouterCfgDefinition(nil))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				pk, ok := r.Get(RouterCfgName)
				if !ok || pk.Engine == nil || pk.Rules == nil {
					t.Error("torn read")
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if _, err := r.Reload(RouterCfgName, RouterCfgRules); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if st := r.Stats()[RouterCfgName]; st.Reloads != 20 {
		t.Fatalf("Reloads = %d, want 20", st.Reloads)
	}
}

func TestRegistryRuleSourceCap(t *testing.T) {
	r := newTestRegistry(t, 0, RouterCfgDefinition(nil))
	big := strings.Repeat("# padding\n", maxRuleSourceBytes/10+1)
	if _, err := r.Reload(RouterCfgName, big); err == nil {
		t.Fatal("oversized rule source accepted")
	}
}
