package pack

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rules"
)

// TelemetryName names the built-in datacenter-telemetry pack (the paper's
// §2.1 domain — the behavior the system shipped with before packs existed).
const TelemetryName = "telemetry"

// TelemetryAlphabet matches vocab.Telemetry so a model trained against the
// pre-pack tokenizer serves the pack unchanged.
const TelemetryAlphabet = "0123456789,|:\n"

// TelemetryDefinition bundles the telemetry domain as a pack: the canonical
// schema, the telemetry text grammar, and whatever rule set the caller mined
// or wrote. Compiling it yields an engine whose decode output is
// bit-identical to the pre-pack construction path (core.TelemetryGrammar +
// vocab.Telemetry) — the pack name changes only the cache epoch, never the
// decoded bytes. TestTelemetryPackMatchesDirect holds it to that.
func TelemetryDefinition(lm core.LM, ruleText string, temperature float64, examples []rules.Record) Definition {
	coarse := dataset.CoarseFields()
	grammar := make([]GrammarField, 0, len(coarse)+1)
	for i, f := range coarse {
		after := byte(',')
		if i == len(coarse)-1 {
			after = '|'
		}
		grammar = append(grammar, GrammarField{Field: f, After: after})
	}
	grammar = append(grammar, GrammarField{Field: dataset.FineField, ElemSep: ',', After: '\n'})
	return Definition{
		Name: TelemetryName, Version: "v1",
		Schema:       dataset.Schema(),
		RuleText:     ruleText,
		Alphabet:     TelemetryAlphabet,
		Grammar:      grammar,
		PromptFields: coarse,
		Examples:     examples,
		LM:           lm,
		Mode:         core.LeJIT,
		Temperature:  temperature,
	}
}
