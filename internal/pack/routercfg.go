package pack

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/rules"
)

// The routercfg pack: ACL/route-map synthesis with structural correctness
// rules, grounded in "What do LLMs need to Synthesize Correct Router
// Configurations?" (PAPERS.md) — the failure modes LLMs exhibit there
// (dangling ACL references, out-of-range prefix lengths, shadowed entries)
// become QF-LIA rules the decoder enforces just in time.
//
// A record is one route-map of RouterEntries entries over a device that
// defines NumAcls access lists:
//
//	NumAcls | RefAcl[0];..;RefAcl[3] | PrefixLen[0];..;PrefixLen[3] | Action[0];..;Action[3]
//
// RefAcl t names the ACL entry t matches on (0 = entry unused), PrefixLen t
// is the match prefix length, and Action t is 0 deny / 1 permit.
const (
	RouterCfgName = "routercfg"
	// RouterEntries is the route-map length R.
	RouterEntries = 4
	// RouterMaxAcls bounds how many ACLs a device defines.
	RouterMaxAcls = 6
)

// RouterCfgRules is the pack's rule file.
//
//   - defined:  every used entry references an ACL the device defines
//     (no dangling references).
//   - minlen/maxlen: prefix lengths of used entries stay in [8,30] — /31
//     and /32 host routes and too-broad matches are rejected.
//   - noshadow: a deny entry immediately before a permit entry must be
//     strictly more specific, or it shadows the permit.
//   - inactive: unused entries are all-zero, so every compliant route-map
//     has one canonical text form.
const RouterCfgRules = `
const R = 4
rule defined:  forall t in 0..R-1: RefAcl[t] <= NumAcls
rule minlen:   forall t in 0..R-1: RefAcl[t] >= 1 -> PrefixLen[t] >= 8
rule maxlen:   forall t in 0..R-1: PrefixLen[t] <= 30
rule noshadow: forall t in 0..R-2: RefAcl[t] >= 1 and Action[t] <= 0 and Action[t+1] >= 1 -> PrefixLen[t] >= PrefixLen[t+1] + 1
rule inactive: forall t in 0..R-1: RefAcl[t] <= 0 -> PrefixLen[t] <= 0 and Action[t] <= 0
`

// RouterCfgSchema returns the pack's schema.
func RouterCfgSchema() *rules.Schema {
	return rules.MustSchema(
		rules.Field{Name: "NumAcls", Kind: rules.Scalar, Lo: 1, Hi: RouterMaxAcls},
		rules.Field{Name: "RefAcl", Kind: rules.Vector, Len: RouterEntries, Lo: 0, Hi: RouterMaxAcls},
		rules.Field{Name: "PrefixLen", Kind: rules.Vector, Len: RouterEntries, Lo: 0, Hi: 32},
		rules.Field{Name: "Action", Kind: rules.Vector, Len: RouterEntries, Lo: 0, Hi: 1},
	)
}

// RouterCfgDefinition bundles the routercfg domain. lm may be nil
// (UniformLM) — the demo and bench layers train a tiny transformer on the
// example corpus instead (TrainLM).
func RouterCfgDefinition(lm core.LM) Definition {
	return Definition{
		Name: RouterCfgName, Version: "v1",
		Schema:   RouterCfgSchema(),
		RuleText: RouterCfgRules,
		Alphabet: "0123456789;|\n",
		Grammar: []GrammarField{
			{Field: "NumAcls", After: '|'},
			{Field: "RefAcl", ElemSep: ';', After: '|'},
			{Field: "PrefixLen", ElemSep: ';', After: '|'},
			{Field: "Action", ElemSep: ';', After: '\n'},
		},
		PromptFields: []string{"NumAcls"},
		Examples:     RouterCfgExamples(200, 11),
		LM:           lm,
		Mode:         core.LeJIT,
		Temperature:  0.9,
	}
}

// RouterCfgExamples generates n rule-compliant route-maps deterministically
// from seed. Compliance is by construction: used entries get strictly
// decreasing prefix lengths (which satisfies noshadow for every action
// pattern), references stay within NumAcls, and unused entries are zeroed.
func RouterCfgExamples(n int, seed int64) []rules.Record {
	rng := rand.New(rand.NewSource(seed))
	out := make([]rules.Record, 0, n)
	for i := 0; i < n; i++ {
		numAcls := int64(1 + rng.Intn(RouterMaxAcls))
		used := 1 + rng.Intn(RouterEntries)
		ref := make([]int64, RouterEntries)
		plen := make([]int64, RouterEntries)
		act := make([]int64, RouterEntries)
		// Strictly decreasing lengths: walk down from a start in [25,30]
		// with gaps of 1..4, so after at most 3 gaps the length is still
		// ≥ 13 — comfortably inside [8,30].
		l := int64(30 - rng.Intn(6))
		for t := 0; t < used; t++ {
			ref[t] = 1 + rng.Int63n(numAcls)
			plen[t] = l
			act[t] = int64(rng.Intn(2))
			l -= int64(1 + rng.Intn(4))
		}
		out = append(out, rules.Record{
			"NumAcls": {numAcls}, "RefAcl": ref, "PrefixLen": plen, "Action": act,
		})
	}
	return out
}
