package pack

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/rules"
)

// Manifest size caps. These bound what a hostile or corrupt manifest can
// make the loader build: the schema instantiation, grammar expansion, and
// rule compilation below all scale with these numbers.
const (
	maxManifestBytes = 16 << 10
	maxFields        = 32
	maxVectorLen     = 32
	maxFieldHi       = 1_000_000
	maxAlphabetLen   = 64
	maxKernelWorkers = 256
)

// ParseManifest parses a pack manifest: the schema, decode shape, and
// identity of a pack, one directive per line ('#' starts a comment).
//
//	pack    routercfg
//	version v1
//	alphabet "0123456789;|\n"
//	scalar  NumAcls 1 6 after "|"
//	vector  RefAcl 4 0 6 sep ";" after "|"
//	vector  PrefixLen 4 0 32 sep ";" after "|"
//	vector  Action 4 0 1 sep ";" after "\n"
//	prompt  NumAcls
//
// Fields appear in grammar order; separators are quoted Go strings holding
// exactly one character. Optional kernel directives tune nn-backed packs:
// "kernel_workers <n>" shards GEMMs across n goroutines and "quantize
// exact|snap|off" selects int8 weight quantization (DESIGN.md §15); both
// override the daemon-level flags. The returned definition has no rule
// text, LM, or examples — callers fill those in before Compile (see Load).
func ParseManifest(src string) (*Definition, error) {
	if len(src) > maxManifestBytes {
		return nil, fmt.Errorf("pack: manifest is %d bytes (max %d)", len(src), maxManifestBytes)
	}
	def := &Definition{Version: "v1"}
	var fields []rules.Field
	seen := map[string]bool{}
	for ln, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		toks := strings.Fields(line)
		if len(toks) == 0 {
			continue
		}
		errf := func(format string, args ...any) error {
			return fmt.Errorf("pack: manifest line %d: %s", ln+1, fmt.Sprintf(format, args...))
		}
		switch toks[0] {
		case "pack":
			if len(toks) != 2 {
				return nil, errf("want: pack <name>")
			}
			def.Name = toks[1]
		case "version":
			if len(toks) != 2 {
				return nil, errf("want: version <string>")
			}
			def.Version = toks[1]
		case "alphabet":
			if len(toks) != 2 {
				return nil, errf("want: alphabet <quoted-string>")
			}
			a, err := strconv.Unquote(toks[1])
			if err != nil {
				return nil, errf("bad alphabet: %v", err)
			}
			if len(a) == 0 || len(a) > maxAlphabetLen {
				return nil, errf("alphabet length %d (want 1..%d)", len(a), maxAlphabetLen)
			}
			def.Alphabet = a
		case "scalar", "vector":
			f, g, err := parseFieldDirective(toks)
			if err != nil {
				return nil, errf("%v", err)
			}
			if seen[f.Name] {
				return nil, errf("duplicate field %q", f.Name)
			}
			seen[f.Name] = true
			if len(fields) >= maxFields {
				return nil, errf("more than %d fields", maxFields)
			}
			fields = append(fields, f)
			def.Grammar = append(def.Grammar, g)
		case "prompt":
			if len(toks) < 2 {
				return nil, errf("want: prompt <field...>")
			}
			def.PromptFields = append(def.PromptFields, toks[1:]...)
		case "kernel_workers":
			if len(toks) != 2 {
				return nil, errf("want: kernel_workers <n>")
			}
			n, err := strconv.Atoi(toks[1])
			if err != nil || n < 1 || n > maxKernelWorkers {
				return nil, errf("kernel_workers %q (want 1..%d)", toks[1], maxKernelWorkers)
			}
			def.KernelWorkers = n
		case "quantize":
			if len(toks) != 2 {
				return nil, errf("want: quantize exact|snap|off")
			}
			switch toks[1] {
			case "exact", "snap":
				def.Quantize = toks[1]
			case "off":
				def.Quantize = ""
			default:
				return nil, errf("quantize %q (want exact|snap|off)", toks[1])
			}
		default:
			return nil, errf("unknown directive %q", toks[0])
		}
	}
	if def.Name == "" {
		return nil, fmt.Errorf("pack: manifest has no 'pack' directive")
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("pack: manifest declares no fields")
	}
	if def.Alphabet == "" {
		return nil, fmt.Errorf("pack: manifest has no 'alphabet' directive")
	}
	for _, p := range def.PromptFields {
		if !seen[p] {
			return nil, fmt.Errorf("pack: prompt field %q not declared", p)
		}
	}
	schema, err := rules.NewSchema(fields...)
	if err != nil {
		return nil, fmt.Errorf("pack: manifest schema: %w", err)
	}
	def.Schema = schema
	return def, nil
}

// parseFieldDirective parses one scalar/vector line into a schema field and
// its grammar entry.
func parseFieldDirective(toks []string) (rules.Field, GrammarField, error) {
	var f rules.Field
	var g GrammarField
	kind := toks[0]
	f.Kind = rules.Scalar
	f.Len = 1
	args := toks[1:]
	// scalar <name> <lo> <hi> ... | vector <name> <len> <lo> <hi> ...
	want := 3
	if kind == "vector" {
		f.Kind = rules.Vector
		want = 4
	}
	if len(args) < want {
		return f, g, fmt.Errorf("want: %s <name> %s<lo> <hi> [sep <q>] [after <q>]",
			kind, map[string]string{"scalar": "", "vector": "<len> "}[kind])
	}
	f.Name = args[0]
	nums := args[1:want]
	rest := args[want:]
	vals := make([]int64, len(nums))
	for i, s := range nums {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return f, g, fmt.Errorf("bad number %q", s)
		}
		vals[i] = v
	}
	if kind == "vector" {
		if vals[0] < 1 || vals[0] > maxVectorLen {
			return f, g, fmt.Errorf("vector length %d (want 1..%d)", vals[0], maxVectorLen)
		}
		f.Len = int(vals[0])
		vals = vals[1:]
	}
	f.Lo, f.Hi = vals[0], vals[1]
	if f.Lo < 0 || f.Hi < f.Lo || f.Hi > maxFieldHi {
		return f, g, fmt.Errorf("domain [%d,%d] (want 0 <= lo <= hi <= %d)", f.Lo, f.Hi, maxFieldHi)
	}
	g.Field = f.Name
	g.ElemSep, g.After = ',', '\n'
	for len(rest) >= 2 {
		c, err := strconv.Unquote(rest[1])
		if err != nil || len(c) != 1 {
			return f, g, fmt.Errorf("separator %q must be a quoted single character", rest[1])
		}
		switch rest[0] {
		case "sep":
			g.ElemSep = c[0]
		case "after":
			g.After = c[0]
		default:
			return f, g, fmt.Errorf("unknown option %q", rest[0])
		}
		rest = rest[2:]
	}
	if len(rest) != 0 {
		return f, g, fmt.Errorf("dangling option %q", rest[0])
	}
	return f, g, nil
}

// Load builds a pack from manifest and rule-file sources. lm may be nil
// (UniformLM placeholder). Malformed sources error cleanly — FuzzLoadPack
// holds Load to "never panic, never poison a registry".
func Load(manifestSrc, ruleSrc string, lm core.LM) (*Compiled, error) {
	def, err := ParseManifest(manifestSrc)
	if err != nil {
		return nil, err
	}
	if len(ruleSrc) > maxRuleSourceBytes {
		return nil, fmt.Errorf("pack: rule source is %d bytes (max %d)", len(ruleSrc), maxRuleSourceBytes)
	}
	def.RuleText = ruleSrc
	def.LM = lm
	return Compile(*def)
}
