// Package pack turns the engine's hard-wired telemetry wiring into
// pluggable domain packs. A pack is a self-contained, versioned bundle of
// schema + rule-file source + decode shape (slot order, separators, prompt
// fields) + a small example corpus, compiled once into the shared read-only
// form the engine clones from (rules compiled to one formula, solver
// pre-checked for satisfiability) and registered in a concurrent-safe
// registry (registry.go). The engine's rule-epoch fingerprint doubles as the
// pack epoch: a hot reload builds a fresh engine whose fingerprint differs
// exactly when the rule environment changed, so prefix-cache snapshots from
// a stale pack are dropped on sight while in-flight requests finish on the
// engine they were admitted with. See DESIGN.md §14.
package pack

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/vocab"
)

// GrammarField is one field of a pack's decode shape, in serialization
// order. A scalar contributes one slot terminated by After; a vector of
// length n contributes n slots separated by ElemSep with After closing the
// last one. The final grammar field's After is the record terminator
// (conventionally '\n').
type GrammarField struct {
	Field   string
	ElemSep byte // between vector elements (ignored for scalars)
	After   byte // after the field's last element
}

// Definition describes a domain pack before compilation.
type Definition struct {
	// Name identifies the pack; requests select it by this name and it is
	// folded into the rule-epoch fingerprint so two packs with coinciding
	// rule environments still never cross-serve cached state.
	Name string
	// Version is a human-readable bundle version (e.g. "v1"); purely
	// informational, surfaced by /v1/packs.
	Version string
	Schema  *rules.Schema
	// RuleText is the pack's rule-file source in the rules DSL. Empty means
	// no rules: guided decoding enforces grammar and field domains only.
	RuleText string
	// Alphabet is the tokenizer alphabet; it must cover every digit and
	// every separator the grammar uses.
	Alphabet string
	Grammar  []GrammarField
	// PromptFields names the leading grammar fields an imputation prompt
	// covers (a grammar prefix); the rest are decoded.
	PromptFields []string
	// Examples is a small rule-compliant corpus: Compile rejects a pack
	// whose own examples violate its rules, and the demo/bench layers train
	// tiny LMs and draw prompts from it.
	Examples []rules.Record

	// LM decodes for this pack. nil means UniformLM (a placeholder that
	// leaves all steering to the rules — file-loaded packs without a model).
	LM          core.LM
	Mode        core.Mode
	Temperature float64
	// MaxNodes / SolverTimeout bound each solver check (0 → defaults);
	// FuzzLoadPack sets them tight so hostile rule files cannot stall.
	MaxNodes      uint64
	SolverTimeout time.Duration
	// KernelWorkers shards the pack model's GEMMs across a worker group of
	// n goroutines when n > 1 (negative → GOMAXPROCS, 0 → serial). Ignored
	// for packs whose LM is not nn-backed. Manifest: "kernel_workers <n>".
	KernelWorkers int
	// Quantize selects int8 weight quantization for the pack's model:
	// "exact" keeps weights untouched and uses int8 only for rows that
	// round-trip bit-exactly; "snap" rewrites weights to their dequantized
	// values so every row qualifies (DESIGN.md §15). Empty means off.
	// Manifest: "quantize exact|snap|off".
	Quantize string
}

var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_-]{0,31}$`)

// Tokenizer builds the pack's tokenizer from its alphabet.
func (d *Definition) Tokenizer() (*vocab.Tokenizer, error) {
	return vocab.New(d.Alphabet)
}

// Slots expands the grammar into the engine's slot form.
func (d *Definition) Slots() ([]core.Slot, error) {
	if len(d.Grammar) == 0 {
		return nil, fmt.Errorf("pack %s: empty grammar", d.Name)
	}
	var slots []core.Slot
	for _, g := range d.Grammar {
		f, ok := d.Schema.Field(g.Field)
		if !ok {
			return nil, fmt.Errorf("pack %s: grammar field %q not in schema", d.Name, g.Field)
		}
		if f.Kind == rules.Scalar {
			slots = append(slots, core.Slot{Field: g.Field, Index: 0, Sep: g.After})
			continue
		}
		for i := 0; i < f.Len; i++ {
			sep := g.ElemSep
			if i == f.Len-1 {
				sep = g.After
			}
			slots = append(slots, core.Slot{Field: g.Field, Index: i, Sep: sep})
		}
	}
	return slots, nil
}

// PromptOf projects a record to the pack's prompt fields (the imputation
// prompt: a grammar prefix).
func (d *Definition) PromptOf(rec rules.Record) rules.Record {
	out := rules.Record{}
	for _, f := range d.PromptFields {
		if vs, ok := rec[f]; ok {
			out[f] = append([]int64(nil), vs...)
		}
	}
	return out
}

// Compiled is a pack compiled into the shared read-only serving form: rules
// parsed and compiled once into the engine's formula (clones share it), the
// solver pre-checked for satisfiability, and the epoch stamped. Immutable
// after construction — a reload builds a new Compiled and swaps the pointer.
type Compiled struct {
	Def    Definition
	Tok    *vocab.Tokenizer
	Schema *rules.Schema
	// Rules is the parsed rule set (nil when the pack has none).
	Rules  *rules.RuleSet
	Engine *core.Engine
	// Epoch is the engine's rule-epoch fingerprint: it changes exactly when
	// a reload changes the rule environment, and gates prefix-cache reuse.
	Epoch uint64
	// Generation counts reloads: 1 for the initially registered bundle.
	Generation int
}

// Compile validates a definition and builds its serving form. The example
// corpus is checked against the rules — a pack whose own examples violate
// its rules is rejected as miswritten.
func Compile(def Definition) (*Compiled, error) {
	return compile(def, true)
}

func compile(def Definition, checkExamples bool) (*Compiled, error) {
	if !nameRE.MatchString(def.Name) {
		return nil, fmt.Errorf("pack: invalid name %q (want %s)", def.Name, nameRE)
	}
	if def.Schema == nil {
		return nil, fmt.Errorf("pack %s: schema is required", def.Name)
	}
	tok, err := def.Tokenizer()
	if err != nil {
		return nil, fmt.Errorf("pack %s: %w", def.Name, err)
	}
	slots, err := def.Slots()
	if err != nil {
		return nil, err
	}
	if def.LM == nil {
		def.LM = UniformLM(tok.Size())
	}
	var rs *rules.RuleSet
	if strings.TrimSpace(def.RuleText) != "" {
		rs, err = rules.ParseRuleSet(def.RuleText, def.Schema)
		if err != nil {
			return nil, fmt.Errorf("pack %s: %w", def.Name, err)
		}
	}
	if checkExamples {
		for i, rec := range def.Examples {
			if err := def.Schema.Validate(rec); err != nil {
				return nil, fmt.Errorf("pack %s: example %d: %w", def.Name, i, err)
			}
			if rs != nil {
				viol, err := rs.Violations(rec)
				if err != nil {
					return nil, fmt.Errorf("pack %s: example %d: %w", def.Name, i, err)
				}
				if len(viol) > 0 {
					return nil, fmt.Errorf("pack %s: example %d violates its own rules: %v", def.Name, i, viol)
				}
			}
		}
	}
	// NewEngine compiles the rules into the shared formula and pre-checks
	// satisfiability, so an unsatisfiable rule file is rejected here — off
	// the serving hot path — rather than failing every decode.
	eng, err := core.NewEngine(core.Config{
		LM: def.LM, Tok: tok, Schema: def.Schema, PackName: def.Name,
		Rules: rs, Slots: slots, Mode: def.Mode,
		Temperature: def.Temperature,
		MaxNodes:    def.MaxNodes, SolverTimeout: def.SolverTimeout,
		KernelWorkers: def.KernelWorkers, QuantizeWeights: def.Quantize,
	})
	if err != nil {
		return nil, fmt.Errorf("pack %s: %w", def.Name, err)
	}
	return &Compiled{
		Def: def, Tok: tok, Schema: def.Schema, Rules: rs,
		Engine: eng, Epoch: eng.Fingerprint(), Generation: 1,
	}, nil
}

// FromEngine wraps an already-built engine as a single pack, preserving its
// decode behavior bit for bit (the engine is used as-is, not rebuilt). This
// is the compatibility path for callers that configure a server with one
// engine instead of a registry.
func FromEngine(name string, eng *core.Engine, rs *rules.RuleSet, schema *rules.Schema) (*Compiled, error) {
	if !nameRE.MatchString(name) {
		return nil, fmt.Errorf("pack: invalid name %q (want %s)", name, nameRE)
	}
	if eng == nil {
		return nil, fmt.Errorf("pack %s: engine is required", name)
	}
	def := Definition{Name: name, Version: "v1", Schema: schema}
	if rs != nil {
		def.RuleText = rs.String()
	}
	return &Compiled{
		Def: def, Schema: schema, Rules: rs,
		Engine: eng, Epoch: eng.Fingerprint(), Generation: 1,
	}, nil
}

// FormatRecord renders a record in the pack's grammar order (digits and
// separators) — the text format the pack's LM is trained on.
func (c *Compiled) FormatRecord(rec rules.Record) (string, error) {
	var b strings.Builder
	for _, sl := range c.Engine.Slots() {
		vs, ok := rec[sl.Field]
		if !ok || sl.Index >= len(vs) {
			return "", fmt.Errorf("pack %s: record missing %s[%d]", c.Def.Name, sl.Field, sl.Index)
		}
		b.WriteString(strconv.FormatInt(vs[sl.Index], 10))
		b.WriteByte(sl.Sep)
	}
	return b.String(), nil
}

// EpochHex renders the pack epoch as the fixed-width hex string used on the
// wire (a JSON number would lose uint64 precision in some clients).
func (c *Compiled) EpochHex() string { return fmt.Sprintf("%016x", c.Epoch) }

// UniformLM returns a placeholder language model that assigns equal logits
// to every token, leaving all steering to the grammar and rules. It backs
// file-loaded packs that ship no trained model, and tests.
func UniformLM(vocabSize int) core.LM { return uniformLM{vocab: vocabSize} }

type uniformLM struct{ vocab int }

func (u uniformLM) VocabSize() int { return u.vocab }
func (u uniformLM) NewSession() core.Session {
	return &uniformSession{logits: make([]float32, u.vocab)}
}

type uniformSession struct{ logits []float32 }

func (s *uniformSession) Append(tok int) error { return nil }
func (s *uniformSession) Logits() []float32    { return s.logits }
