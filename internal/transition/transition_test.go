package transition

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"
)

func TestAdmissibleSimpleRange(t *testing.T) {
	// Feasible set [0, 40], width 2 — the paper's I3 after the prefix
	// 20,15,25 under R2 with TotalIngress=100 (Fig 1b).
	sys := New(2, IntervalSetOracle([][2]int64{{0, 40}}))
	digits, canEnd := sys.Admissible(sys.Start())
	if canEnd {
		t.Error("empty prefix must not terminate")
	}
	// First digit d leads to values {d} ∪ [10d, 10d+9]; feasible for d ≤ 4
	// (d=4 → {4} ∪ [40,49], 40 feasible) and for d in 5..9 the single
	// value d itself is ≤ 40 so also feasible.
	for d := 0; d <= 9; d++ {
		if !digits[d] {
			t.Errorf("first digit %d should be admissible (value %d ≤ 40)", d, d)
		}
	}

	// After '4': value 4, can end; digit extensions 40..49 → only 0.
	st, err := sys.Step(sys.Start(), '4')
	if err != nil {
		t.Fatal(err)
	}
	digits, canEnd = sys.Admissible(st)
	if !canEnd {
		t.Error("prefix 4 denotes 4, which is feasible → should terminate")
	}
	for d := 0; d <= 9; d++ {
		want := d == 0 // 40 feasible, 41..49 not
		if digits[d] != want {
			t.Errorf("after '4': digit %d admissible=%v, want %v", d, digits[d], want)
		}
	}

	// After '7' (width 2, completions {7} ∪ [70,79]): 7 feasible, ends ok,
	// but no extension.
	st, _ = sys.Step(sys.Start(), '7')
	digits, canEnd = sys.Admissible(st)
	if !canEnd {
		t.Error("7 is feasible")
	}
	for d := 0; d <= 9; d++ {
		if digits[d] {
			t.Errorf("after '7': digit %d should be blocked (7%d > 40)", d, d)
		}
	}
}

func TestAdmissibleWithHole(t *testing.T) {
	// The R3 hole from the optimizer test: feasible set [0,10] ∪ [30,40].
	sys := New(2, IntervalSetOracle([][2]int64{{0, 10}, {30, 40}}))
	digits, _ := sys.Admissible(sys.Start())
	// Digit 2 → {2} ∪ [20,29]: 2 ≤ 10 feasible → admissible.
	if !digits[2] {
		t.Error("digit 2 admissible via the single value 2")
	}
	// After '2', extensions 20..29 all infeasible, but 2 itself feasible.
	st, _ := sys.Step(sys.Start(), '2')
	digits, canEnd := sys.Admissible(st)
	if !canEnd {
		t.Error("2 feasible")
	}
	for d := 0; d <= 9; d++ {
		if digits[d] {
			t.Errorf("2%d should be blocked (hole)", d)
		}
	}
	// After '1': 1 feasible; extensions 10 feasible only.
	st, _ = sys.Step(sys.Start(), '1')
	digits, canEnd = sys.Admissible(st)
	if !canEnd {
		t.Error("1 feasible")
	}
	for d := 0; d <= 9; d++ {
		want := d == 0
		if digits[d] != want {
			t.Errorf("1%d admissible=%v want %v", d, digits[d], want)
		}
	}
	// After '3': 3 feasible; 30..39 all feasible.
	st, _ = sys.Step(sys.Start(), '3')
	digits, _ = sys.Admissible(st)
	for d := 0; d <= 9; d++ {
		if !digits[d] {
			t.Errorf("3%d should be admissible", d)
		}
	}
}

func TestLeadingZeroPolicy(t *testing.T) {
	sys := New(3, IntervalSetOracle([][2]int64{{0, 999}}))
	digits, _ := sys.Admissible(sys.Start())
	if !digits[0] {
		t.Error("bare 0 must be admissible when 0 is feasible")
	}
	st, _ := sys.Step(sys.Start(), '0')
	digits, canEnd := sys.Admissible(st)
	if !canEnd {
		t.Error("\"0\" should terminate")
	}
	for d := 0; d <= 9; d++ {
		if digits[d] {
			t.Errorf("extending \"0\" with %d must be forbidden", d)
		}
	}
	if _, err := sys.Step(st, '5'); err != ErrLeadingZero {
		t.Errorf("Step after 0: err = %v, want ErrLeadingZero", err)
	}
	// When 0 is infeasible, the first '0' is inadmissible.
	sys2 := New(3, IntervalSetOracle([][2]int64{{1, 999}}))
	digits, _ = sys2.Admissible(sys2.Start())
	if digits[0] {
		t.Error("bare 0 must be inadmissible when 0 is infeasible")
	}
}

func TestStepErrors(t *testing.T) {
	sys := New(2, IntervalSetOracle([][2]int64{{0, 99}}))
	if _, err := sys.Step(sys.Start(), 'x'); err != ErrNotDigit {
		t.Errorf("non-digit: %v", err)
	}
	st, _ := sys.Step(sys.Start(), '1')
	st, _ = sys.Step(st, '2')
	if _, err := sys.Step(st, '3'); err != ErrTooWide {
		t.Errorf("width overflow: %v", err)
	}
}

func TestHasPath(t *testing.T) {
	sys := New(2, IntervalSetOracle([][2]int64{{150, 200}})) // outside 2-digit range
	if sys.HasPath() {
		t.Error("no 2-digit value in [150,200]")
	}
	sys2 := New(3, IntervalSetOracle([][2]int64{{150, 200}}))
	if !sys2.HasPath() {
		t.Error("3-digit values exist in [150,200]")
	}
}

// TestExhaustiveAgainstEnumeration verifies that, for random interval sets,
// the set of strings accepted by walking the transition system equals the
// set of canonical decimal renderings of feasible values.
func TestExhaustiveAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		maxDigits := 1 + rng.Intn(3) // 1..3
		limit := pow10(maxDigits) - 1
		// Random union of up to 3 intervals within [0, limit].
		var ivs [][2]int64
		for i := 0; i < 1+rng.Intn(3); i++ {
			a := rng.Int63n(limit + 1)
			b := a + rng.Int63n(limit-a+1)
			ivs = append(ivs, [2]int64{a, b})
		}
		sys := New(maxDigits, IntervalSetOracle(ivs))

		feasible := func(v int64) bool {
			for _, iv := range ivs {
				if v >= iv[0] && v <= iv[1] {
					return true
				}
			}
			return false
		}

		// Enumerate accepted strings via DFS.
		accepted := map[string]bool{}
		var dfs func(st State, s string)
		dfs = func(st State, s string) {
			digits, canEnd := sys.Admissible(st)
			if canEnd {
				accepted[s] = true
			}
			for d := 0; d <= 9; d++ {
				if !digits[d] {
					continue
				}
				nst, err := sys.Step(st, byte('0'+d))
				if err != nil {
					t.Fatalf("admissible digit rejected by Step: %v", err)
				}
				dfs(nst, s+string(byte('0'+d)))
			}
		}
		dfs(sys.Start(), "")

		// Expected: canonical decimal strings of feasible values.
		want := map[string]bool{}
		for v := int64(0); v <= limit; v++ {
			if feasible(v) {
				want[strconv.FormatInt(v, 10)] = true
			}
		}
		if len(accepted) != len(want) {
			t.Fatalf("trial %d (ivs %v, w=%d): accepted %d strings, want %d\naccepted=%v\nwant=%v",
				trial, ivs, maxDigits, len(accepted), len(want), keys(accepted), keys(want))
		}
		for s := range want {
			if !accepted[s] {
				t.Fatalf("trial %d: missing %q", trial, s)
			}
		}
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestCachedOracle(t *testing.T) {
	calls := 0
	base := func(lo, hi int64) bool {
		calls++
		return lo <= 5 && 5 <= hi
	}
	o := CachedOracle(base)
	for i := 0; i < 3; i++ {
		if !o(0, 10) {
			t.Error("5 in [0,10]")
		}
		if o(6, 10) {
			t.Error("5 not in [6,10]")
		}
	}
	if calls != 2 {
		t.Errorf("base called %d times, want 2 (cached)", calls)
	}
}

func TestNewPanics(t *testing.T) {
	for _, bad := range []int{0, 19, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", bad)
				}
			}()
			New(bad, IntervalSetOracle(nil))
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil oracle should panic")
			}
		}()
		New(2, nil)
	}()
}

func TestStateString(t *testing.T) {
	sys := New(3, IntervalSetOracle([][2]int64{{0, 999}}))
	st := sys.Start()
	if st.String() != "ε" {
		t.Errorf("start = %q", st.String())
	}
	st, _ = sys.Step(st, '4')
	st, _ = sys.Step(st, '2')
	if got := st.String(); got != "42" {
		t.Errorf("state = %q, want 42", got)
	}
	if st.Value() != 42 || st.Len() != 2 {
		t.Errorf("Value/Len = %d/%d", st.Value(), st.Len())
	}
	_ = fmt.Sprintf("%v", st)
}

// batchFromOracle lifts a single-range oracle into a BatchOracle, counting
// calls; the reference semantics NewBatch implementations must match.
func batchFromOracle(o Oracle, calls *int) BatchOracle {
	return func(ranges [][2]int64) bool {
		*calls++
		for _, r := range ranges {
			if o(r[0], r[1]) {
				return true
			}
		}
		return false
	}
}

// TestBatchAdmissibleEquivalence fuzzes the batched path against the
// per-range path: for random interval sets, every reachable state must get
// identical admissibility from New and NewBatch.
func TestBatchAdmissibleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		maxDigits := 1 + rng.Intn(3)
		limit := pow10(maxDigits) - 1
		var ivs [][2]int64
		for i := 0; i < 1+rng.Intn(3); i++ {
			a := rng.Int63n(limit + 1)
			b := a + rng.Int63n(limit-a+1)
			ivs = append(ivs, [2]int64{a, b})
		}
		oracle := IntervalSetOracle(ivs)
		plain := New(maxDigits, oracle)
		calls := 0
		batched := NewBatch(maxDigits, oracle, batchFromOracle(oracle, &calls))

		var walk func(st State)
		walk = func(st State) {
			d1, e1 := plain.Admissible(st)
			d2, e2 := batched.Admissible(st)
			if d1 != d2 || e1 != e2 {
				t.Fatalf("trial %d state %s: plain (%v,%v) != batched (%v,%v)",
					trial, st, d1, e1, d2, e2)
			}
			for d := 0; d <= 9; d++ {
				if !d1[d] {
					continue
				}
				nst, err := plain.Step(st, byte('0'+d))
				if err != nil {
					t.Fatal(err)
				}
				walk(nst)
			}
		}
		walk(plain.Start())
		if calls == 0 {
			t.Fatalf("trial %d: batch oracle never consulted", trial)
		}
	}
}

// TestBatchOneCallPerCandidate pins the batching contract: from the start
// state of a width-3 system, each first-digit candidate costs exactly one
// batch call carrying all its completion widths.
func TestBatchOneCallPerCandidate(t *testing.T) {
	var got [][][2]int64
	sys := NewBatch(3, IntervalSetOracle([][2]int64{{0, 999}}),
		func(ranges [][2]int64) bool {
			cp := append([][2]int64(nil), ranges...)
			got = append(got, cp)
			return true
		})
	digits, canEnd := sys.Admissible(sys.Start())
	if canEnd {
		t.Error("empty prefix must not end")
	}
	for d := 0; d <= 9; d++ {
		if !digits[d] {
			t.Errorf("digit %d inadmissible under a full-range oracle", d)
		}
	}
	// Digit 0 collapses to the single value 0 and uses the single-range
	// oracle; digits 1..9 each cost one batch call.
	if len(got) != 9 {
		t.Fatalf("%d batch calls, want 9 (one per first digit 1..9)", len(got))
	}
	// Candidate "7": completions are {7, 70..79, 700..799}.
	want := [][2]int64{{7, 7}, {70, 79}, {700, 799}}
	for _, call := range got {
		if call[0][0] == 7 {
			for i, r := range want {
				if call[i] != r {
					t.Fatalf("candidate 7 ranges %v, want %v", call, want)
				}
			}
		}
	}
	if sys.FeasibleAny == nil {
		t.Error("NewBatch did not set FeasibleAny")
	}
}

func TestNewBatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil batch oracle should panic")
		}
	}()
	NewBatch(2, IntervalSetOracle(nil), nil)
}
