// Package transition implements the character-level transition system LeJIT
// builds on the fly during inference (paper Fig 2).
//
// LLMs emit numbers digit by digit, while the SMT solver reasons about whole
// variables. This package bridges the granularity gap: given a feasibility
// oracle over value ranges ("does any rule-compliant completion assign this
// variable a value in [lo, hi]?"), it computes which next characters — digits
// or the value terminator — keep the partial number on a path to a feasible
// value.
//
// States are digit prefixes in canonical decimal (no leading zeros except
// the number 0 itself). A digit d is admissible from prefix p iff some value
// whose decimal rendering starts with p·d and has at most MaxDigits digits is
// feasible; the terminator is admissible iff the value denoted by p itself is
// feasible.
package transition

import (
	"errors"
	"fmt"
)

// Oracle answers range-feasibility queries: it reports whether any value in
// the inclusive range [lo, hi] is feasible. Implementations are typically
// backed by an SMT solver constrained with the rules and the tokens generated
// so far; they must be conservative in neither direction (exact).
type Oracle func(lo, hi int64) bool

// BatchOracle answers a whole candidate's completion set in one call: it
// reports whether any of the inclusive ranges contains a feasible value.
// Semantically identical to OR-ing Feasible over the ranges, but the oracle
// sees the full set up front, so an interval-based implementation can answer
// the easy ranges locally and spend solver work only on the residue. The
// ranges slice is owned by the caller and reused between calls.
type BatchOracle func(ranges [][2]int64) bool

// System is a character-level transition system over decimal digit strings.
type System struct {
	// MaxDigits caps the number's width. It must cover the variable's
	// upper bound (a variable bounded by 300 needs MaxDigits ≥ 3).
	MaxDigits int
	// Feasible is the range-feasibility oracle.
	Feasible Oracle
	// FeasibleAny, when non-nil, answers each digit candidate's completion
	// union in one batched call instead of MaxDigits-k single-range probes.
	FeasibleAny BatchOracle

	rbuf [][2]int64 // scratch for the batched Admissible path
}

// State is a digit prefix: the value accumulated so far and the number of
// digits consumed. The zero State is the empty prefix (start state).
type State struct {
	val     int64
	ndigits int
}

// Value returns the integer denoted by the prefix; only meaningful when
// Len > 0.
func (s State) Value() int64 { return s.val }

// Len returns the number of digits consumed.
func (s State) Len() int { return s.ndigits }

// String renders the state for debugging.
func (s State) String() string {
	if s.ndigits == 0 {
		return "ε"
	}
	return fmt.Sprintf("%0*d", s.ndigits, s.val)
}

// Errors returned by Step.
var (
	ErrNotDigit    = errors.New("transition: character is not a decimal digit")
	ErrTooWide     = errors.New("transition: exceeded MaxDigits")
	ErrLeadingZero = errors.New("transition: leading zero")
)

// New constructs a transition system. It panics if maxDigits is not in
// [1, 18] (18 keeps all reachable values inside int64).
func New(maxDigits int, oracle Oracle) *System {
	if maxDigits < 1 || maxDigits > 18 {
		panic(fmt.Sprintf("transition: MaxDigits %d out of [1,18]", maxDigits))
	}
	if oracle == nil {
		panic("transition: nil oracle")
	}
	return &System{MaxDigits: maxDigits, Feasible: oracle}
}

// NewBatch constructs a transition system whose Admissible path batches each
// candidate's completion ranges into one BatchOracle call. The single-range
// oracle is still required: Step/HasPath and the canEnd probe use it. Both
// must agree with each other (batch(ranges) ⇔ ∃r∈ranges: oracle(r)).
func NewBatch(maxDigits int, oracle Oracle, batch BatchOracle) *System {
	s := New(maxDigits, oracle)
	if batch == nil {
		panic("transition: nil batch oracle")
	}
	s.FeasibleAny = batch
	s.rbuf = make([][2]int64, 0, maxDigits+1)
	return s
}

// Start returns the empty-prefix state.
func (s *System) Start() State { return State{} }

// Step consumes one digit character ('0'–'9').
func (s *System) Step(st State, c byte) (State, error) {
	if c < '0' || c > '9' {
		return st, ErrNotDigit
	}
	if st.ndigits >= s.MaxDigits {
		return st, ErrTooWide
	}
	if st.ndigits > 0 && st.val == 0 {
		return st, ErrLeadingZero
	}
	return State{val: st.val*10 + int64(c-'0'), ndigits: st.ndigits + 1}, nil
}

// Admissible computes, for the given state, which digits may follow
// (digits[d] for d in 0..9) and whether the value terminator may follow
// (canEnd). A digit d is admissible iff the completion set of prefix·d
// intersects the feasible set; completions of a prefix p with k digits are
//
//	⋃_{j=0}^{MaxDigits-k} [ p·10^j , p·10^j + 10^j − 1 ]
//
// i.e. p itself, p followed by one more digit, and so on up to the width cap.
// The canonical-decimal rule forbids extending the prefix "0".
func (s *System) Admissible(st State) (digits [10]bool, canEnd bool) {
	canEnd = st.ndigits > 0 && s.Feasible(st.val, st.val)
	if st.ndigits >= s.MaxDigits {
		return digits, canEnd
	}
	if st.ndigits > 0 && st.val == 0 {
		// "0" cannot be extended (canonical decimal).
		return digits, canEnd
	}
	lo := 0
	if st.ndigits == 0 {
		// First digit: "0" is a complete number on its own, admissible
		// iff 0 is feasible — checked via the prefix-completion union
		// which for prefix "0" collapses to the single value 0.
		digits[0] = s.Feasible(0, 0)
		lo = 1
	}
	for d := lo; d <= 9; d++ {
		v := st.val*10 + int64(d)
		if s.prefixFeasible(v, st.ndigits+1) {
			digits[d] = true
		}
	}
	return digits, canEnd
}

// prefixFeasible reports whether any ≤MaxDigits-digit value whose decimal
// form starts with the k-digit prefix of value v is feasible. With a batch
// oracle, the whole completion union goes out as one call; otherwise the
// widths are probed narrow-to-wide, short-circuiting on the first hit.
func (s *System) prefixFeasible(v int64, k int) bool {
	if s.FeasibleAny != nil {
		s.rbuf = s.rbuf[:0]
		for j := 0; j <= s.MaxDigits-k; j++ {
			width := pow10(j)
			s.rbuf = append(s.rbuf, [2]int64{v * width, v*width + width - 1})
		}
		return s.FeasibleAny(s.rbuf)
	}
	for j := 0; j <= s.MaxDigits-k; j++ {
		width := pow10(j)
		if s.Feasible(v*width, v*width+width-1) {
			return true
		}
	}
	return false
}

// HasPath reports whether any feasible value is reachable from the start
// state — i.e. whether the variable has any feasible value at all within the
// width cap. LeJIT's lookahead invariant guarantees this is true whenever a
// value generation begins.
func (s *System) HasPath() bool {
	return s.Feasible(0, pow10(s.MaxDigits)-1)
}

func pow10(n int) int64 {
	v := int64(1)
	for i := 0; i < n; i++ {
		v *= 10
	}
	return v
}

// IntervalSetOracle builds an Oracle from an explicit union of inclusive
// intervals; useful for tests and for callers that precompute the feasible
// set.
func IntervalSetOracle(intervals [][2]int64) Oracle {
	ivs := append([][2]int64(nil), intervals...)
	return func(lo, hi int64) bool {
		for _, iv := range ivs {
			if iv[0] <= hi && lo <= iv[1] {
				return true
			}
		}
		return false
	}
}

// CachedOracle memoizes an Oracle. LeJIT re-queries identical ranges when the
// underlying constraint state has not changed between characters of the same
// value; the cache must be discarded (by building a new one) whenever the
// constraint state advances.
func CachedOracle(o Oracle) Oracle {
	type key struct{ lo, hi int64 }
	cache := make(map[key]bool)
	return func(lo, hi int64) bool {
		k := key{lo, hi}
		if v, ok := cache[k]; ok {
			return v
		}
		v := o(lo, hi)
		cache[k] = v
		return v
	}
}
