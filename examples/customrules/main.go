// Custom-rules example: "a single LLM to rule them all" (paper §3). One
// trained model is repurposed at inference time by swapping hand-written
// rule plug-ins — an SLO enforcement profile, a maintenance-window profile,
// and an incident-replay profile — with zero retraining or fine-tuning.
//
// Run with:
//
//	go run ./examples/customrules
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/lejit"
)

func main() {
	schema := lejit.TelemetrySchema()
	train := lejit.SimulateTelemetry(20, 80, 21)

	model, err := lejit.NewModel(lejit.ModelConfig{
		Vocab: lejit.TelemetryTokenizer().Size(), Ctx: 48, Dim: 48, Heads: 4, Layers: 2,
	}, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training one %d-parameter model...\n\n", model.NumParams())
	if _, err := lejit.TrainOnRecords(model, train, schema, lejit.TrainConfig{Epochs: 2, Seed: 5}); err != nil {
		log.Fatal(err)
	}

	// Three operator-written rule plug-ins for three different tasks.
	profiles := []struct {
		name  string
		rules string
	}{
		{
			name: "SLO enforcement (generate compliant busy-hour traffic)",
			rules: `
const BW = 60
rule conserve: sum(I) == TotalIngress
rule busy:     TotalIngress >= 80
rule capacity: max(I) <= BW
rule no_drops: Retrans == 0
`,
		},
		{
			name: "maintenance window (quiet traffic, no bursts)",
			rules: `
const BW = 60
rule conserve: sum(I) == TotalIngress
rule quiet:    TotalIngress <= 40
rule no_burst: max(I) < BW/2
rule calm:     Congestion == 0
`,
		},
		{
			name: "incident replay (congested bursty windows)",
			rules: `
const BW = 60
rule conserve:  sum(I) == TotalIngress
rule congested: Congestion >= 10
rule burst:     Congestion > 0 -> max(I) >= BW/2
rule loss:      Retrans >= 1 and Retrans <= Congestion
`,
		},
	}

	rng := rand.New(rand.NewSource(6))
	for _, p := range profiles {
		rs, err := lejit.ParseRules(p.rules, schema)
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		pipe, err := lejit.NewPipeline(model, schema, rs, lejit.WithTemperature(0.95))
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		fmt.Printf("-- %s --\n", p.name)
		for i := 0; i < 3; i++ {
			rec, _, err := pipe.Generate(rng)
			if err != nil {
				log.Fatal(err)
			}
			line, err := lejit.FormatRecord(rec, schema)
			if err != nil {
				log.Fatal(err)
			}
			vs, _ := pipe.Violations(rec)
			fmt.Printf("  %s  violations: %v", line[:len(line)-1], vs)
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("same weights, three behaviours — the rules are the plug-in.")
}
