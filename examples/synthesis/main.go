// Synthesis example: the paper's §4.2 task. The SAME kind of trained model,
// now run unconditionally with a rule set mined over the coarse signals
// only, generates synthetic telemetry whose per-field distributions track
// the real data while complying with every mined rule.
//
// Run with:
//
//	go run ./examples/synthesis
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/lejit"
)

func main() {
	schema := lejit.TelemetrySchema()
	all := lejit.SimulateTelemetry(24, 80, 11)
	train, test := all[:20*80], all[20*80:]

	// Synthesis rules: relationships among the coarse signals themselves
	// (the paper swaps rule sets, not models).
	rs, err := lejit.MineRules(train, schema, lejit.MineOptions{
		Fields: lejit.TelemetryCoarseFields(), Slack: 2, Coeffs: []int64{1, 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d coarse-signal rules\n", rs.Len())

	model, err := lejit.NewModel(lejit.ModelConfig{
		Vocab: lejit.TelemetryTokenizer().Size(), Ctx: 48, Dim: 48, Heads: 4, Layers: 2,
	}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training a %d-parameter model...\n", model.NumParams())
	if _, err := lejit.TrainOnRecords(model, train, schema, lejit.TrainConfig{Epochs: 2, Seed: 3}); err != nil {
		log.Fatal(err)
	}

	pipe, err := lejit.NewPipeline(model, schema, rs, lejit.WithTemperature(0.95))
	if err != nil {
		log.Fatal(err)
	}

	// Draw synthetic records unconditionally.
	rng := rand.New(rand.NewSource(4))
	const n = 60
	var synth []lejit.Record
	violations := 0
	for i := 0; i < n; i++ {
		rec, _, err := pipe.Generate(rng)
		if err != nil {
			log.Fatal(err)
		}
		if vs, _ := pipe.Violations(rec); len(vs) > 0 {
			violations++
		}
		synth = append(synth, rec)
	}
	fmt.Printf("\ngenerated %d synthetic records, %d rule violations (LeJIT guarantees 0)\n", n, violations)

	// Compare a marginal: median/p90 of TotalIngress, synthetic vs real.
	fmt.Println("\nTotalIngress distribution   real-test   synthetic")
	for _, q := range []float64{0.25, 0.5, 0.9} {
		fmt.Printf("  p%-3.0f                      %6d      %6d\n",
			q*100, quantile(test, q), quantileRecs(synth, q))
	}
	fmt.Println("\nswap the rule set to repurpose the same model — no retraining needed.")
}

func quantile(recs []lejit.Record, q float64) int64 {
	return quantileRecs(recs, q)
}

func quantileRecs(recs []lejit.Record, q float64) int64 {
	vals := make([]int64, 0, len(recs))
	for _, r := range recs {
		vals = append(vals, r["TotalIngress"][0])
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals[int(q*float64(len(vals)-1))]
}
