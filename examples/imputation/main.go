// Imputation example: the paper's §2.1 use case at realistic scale. A
// datacenter operator has coarse per-window counters (ingress volume, ECN
// marks, retransmits, ...) and wants the fine-grained millisecond-level
// ingress series back. We mine hundreds of rules from training racks with
// the NetNomos-style miner, train a character-level LM, and compare free
// sampling against LeJIT-guided imputation on held-out racks.
//
// Run with:
//
//	go run ./examples/imputation
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/lejit"
)

func main() {
	schema := lejit.TelemetrySchema()

	// Simulated datacenter telemetry: 30 racks, split by rack as in the
	// paper (train on most racks, test on unseen ones).
	all := lejit.SimulateTelemetry(30, 80, 7)
	train, test := all[:25*80], all[25*80:]

	// Mine hard rules from the training racks (the paper's 716-rule set,
	// at example scale).
	rs, err := lejit.MineRules(train, schema, lejit.MineOptions{Slack: 2, Coeffs: []int64{1, 2}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d rules from %d training windows\n", rs.Len(), len(train))

	// Train the generic LM from scratch.
	model, err := lejit.NewModel(lejit.ModelConfig{
		Vocab: lejit.TelemetryTokenizer().Size(), Ctx: 48, Dim: 48, Heads: 4, Layers: 2,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training a %d-parameter model...\n", model.NumParams())
	if _, err := lejit.TrainOnRecords(model, train, schema, lejit.TrainConfig{Epochs: 2, Seed: 1}); err != nil {
		log.Fatal(err)
	}

	pipe, err := lejit.NewPipeline(model, schema, rs, lejit.WithTemperature(0.9))
	if err != nil {
		log.Fatal(err)
	}

	// Impute fine-grained series for unseen windows; score rule compliance.
	rng := rand.New(rand.NewSource(2))
	const n = 30
	var vanillaViol, lejitViol, vanillaBad, infeasible int
	var vanillaMAE, lejitMAE float64
	var vanillaN, lejitN int
	for i := 0; i < n; i++ {
		truth := test[i]
		known := lejit.Record{}
		for _, f := range lejit.TelemetryCoarseFields() {
			known[f] = truth[f]
		}

		if rec, _, err := pipe.Sample(known, rng); err != nil {
			vanillaBad++
		} else {
			if vs, _ := pipe.Violations(rec); len(vs) > 0 {
				vanillaViol++
			}
			vanillaMAE += mae(rec["I"], truth["I"])
			vanillaN++
		}

		rec, _, err := pipe.Impute(known, rng)
		if err != nil {
			if lejit.IsInfeasible(err) {
				infeasible++ // test window itself contradicts a mined rule
				continue
			}
			log.Fatal(err)
		}
		if vs, _ := pipe.Violations(rec); len(vs) > 0 {
			lejitViol++
		}
		lejitMAE += mae(rec["I"], truth["I"])
		lejitN++
	}

	fmt.Printf("\nover %d held-out windows:\n", n)
	fmt.Printf("  vanilla : %d/%d outputs violate ≥1 rule (%d malformed), MAE %.2f\n",
		vanillaViol, vanillaN, vanillaBad, vanillaMAE/float64(max(vanillaN, 1)))
	fmt.Printf("  LeJIT   : %d/%d outputs violate ≥1 rule (%d infeasible prompts), MAE %.2f\n",
		lejitViol, lejitN, infeasible, lejitMAE/float64(max(lejitN, 1)))
	fmt.Println("\nLeJIT is guaranteed violation-free on every record it returns.")
}

func mae(a, b []int64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		s += float64(d)
	}
	return s / float64(len(a))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
