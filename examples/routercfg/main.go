// Domain-pack example: the routercfg pack synthesizes router route-map
// entries (ACL references, prefix lengths, actions) under structural rules —
// no shadowed prefixes, references within bounds, unused entries zeroed —
// instead of network telemetry. The pack bundles everything the engine
// needs (schema, rules, vocabulary, decode grammar, example corpus), so
// pointing LeJIT at a new domain is registering a new pack, not forking the
// decoder.
//
// The example trains the pack's tiny transformer on its example corpus,
// decodes a few route-maps, then hot-reloads a tightened rule file through
// the registry — the same swap `POST /v1/packs/reload` performs in lejitd —
// and decodes again under the new epoch.
//
// Run with:
//
//	go run ./examples/routercfg
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/pack"
)

func main() {
	// Build the routercfg pack: nil LM means "train one on the example
	// corpus" via TrainLM (lejitd -demo does exactly this at startup).
	def := pack.RouterCfgDefinition(nil)
	fmt.Printf("training the %s pack's model on %d example route-maps...\n", def.Name, len(def.Examples))
	if err := pack.TrainLM(&def, pack.TrainLMConfig{Epochs: 2, Seed: 3}); err != nil {
		log.Fatal(err)
	}

	reg := pack.NewRegistry(8 << 20)
	pk, err := pack.Compile(def)
	if err != nil {
		log.Fatal(err)
	}
	if err := reg.Register(pk); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered pack %s %s, epoch %s, %d rules\n\n", pk.Def.Name, pk.Def.Version, pk.EpochHex(), pk.Rules.Len())

	// Decode a few route-maps: the prompt pins NumAcls, the engine fills in
	// compliant ACL references, prefix lengths, and actions.
	decode := func(pk *pack.Compiled, label string) {
		for i, ex := range pack.RouterCfgExamples(3, 42) {
			seed := int64(100 + i)
			out, err := pk.Engine.DecodeRequests(context.Background(),
				[]core.BatchRequest{{Prompt: pk.Def.PromptOf(ex), Seed: &seed}}, 1, 0, nil)
			if err != nil {
				log.Fatal(err)
			}
			if out[0].Err != nil {
				log.Fatal(out[0].Err)
			}
			line, err := pk.FormatRecord(out[0].Res.Rec)
			if err != nil {
				log.Fatal(err)
			}
			if v, err := pk.Rules.Violations(out[0].Res.Rec); err != nil || len(v) > 0 {
				log.Fatalf("violations: %v (err %v)", v, err)
			}
			fmt.Printf("  [%s] NumAcls=%d -> %s", label, ex["NumAcls"][0], line)
		}
	}
	fmt.Println("route-maps under the shipped rules (NumAcls|RefAcl…|PrefixLen…|Action…):")
	decode(pk, pk.EpochHex()[:8])

	// Hot-reload a tightened rule file: prefix lengths must now be at least
	// /16 on active entries. The registry recompiles off the hot path and
	// swaps atomically; the old *Compiled keeps working for anyone holding
	// it, which is how in-flight requests finish on their admission epoch.
	tightened := pack.RouterCfgRules + "rule wide: forall t in 0..R-1: RefAcl[t] >= 1 -> PrefixLen[t] >= 16\n"
	pk2, err := reg.Reload(pack.RouterCfgName, tightened)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreloaded: epoch %s -> %s (generation %d), %d rules\n",
		pk.EpochHex(), pk2.EpochHex(), pk2.Generation, pk2.Rules.Len())
	fmt.Println("route-maps under the tightened rules (active prefixes >= /16):")
	decode(pk2, pk2.EpochHex()[:8])

	// The manifest format carries the same definition as flat files, which
	// is what `lejitd -pack manifest:rules` loads at startup.
	fmt.Println("\nthe equivalent pack manifest:")
	fmt.Println(strings.TrimSpace(`
pack     routercfg
version  v1
alphabet "0123456789;|\n"
scalar   NumAcls 1 6 after "|"
vector   RefAcl 4 0 6 sep ";" after "|"
vector   PrefixLen 4 0 32 sep ";" after "|"
vector   Action 4 0 1 sep ";" after "\n"
prompt   NumAcls`))
}
