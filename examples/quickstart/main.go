// Quickstart: train a tiny character-level LM on synthetic telemetry, write
// three rules (the paper's R1–R3), and watch LeJIT turn the model's free —
// and frequently rule-violating — output into guaranteed-compliant output
// without retraining.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/lejit"
)

func main() {
	// 1. Declare the record shape: one coarse window (TotalIngress,
	// Congestion) plus the fine-grained ingress vector I[0..4].
	schema := lejit.MustSchema(
		lejit.Field{Name: "TotalIngress", Kind: lejit.Scalar, Lo: 0, Hi: 300},
		lejit.Field{Name: "Congestion", Kind: lejit.Scalar, Lo: 0, Hi: 100},
		lejit.Field{Name: "I", Kind: lejit.Vector, Len: 5, Lo: 0, Hi: 60},
	)

	// 2. Write the rules (paper §2.1, R1–R3).
	rs, err := lejit.ParseRules(`
const BW = 60
const T  = 5
rule r1: forall t in 0..T-1: 0 <= I[t] and I[t] <= BW
rule r2: sum(I) == TotalIngress
rule r3: Congestion > 0 -> max(I) >= BW/2
`, schema)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Synthesize a toy training corpus that obeys the rules, and train
	// a small transformer from scratch (a few seconds on a laptop).
	rng := rand.New(rand.NewSource(42))
	corpus := makeCorpus(rng, 800)
	model, err := lejit.NewModel(lejit.ModelConfig{
		Vocab: lejit.TelemetryTokenizer().Size(), Ctx: 40, Dim: 32, Heads: 2, Layers: 2,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training a", model.NumParams(), "parameter model from scratch...")
	if _, err := lejit.TrainOnRecords(model, corpus, schema, lejit.TrainConfig{Epochs: 2, Seed: 1}); err != nil {
		log.Fatal(err)
	}

	// 4. Build two pipelines over the SAME model: one decodes freely, one
	// enforces the rules Just-In-Time.
	pipe, err := lejit.NewPipeline(model, schema, rs, lejit.WithTemperature(0.9))
	if err != nil {
		log.Fatal(err)
	}

	// 5. Impute the paper's running example: TotalIngress=100, Congestion=8.
	known := lejit.Record{"TotalIngress": {100}, "Congestion": {8}}
	fmt.Println("\nimputing I[0..4] for TotalIngress=100, Congestion=8")

	fmt.Println("\n-- vanilla (free sampling) --")
	for i := 0; i < 3; i++ {
		rec, _, err := pipe.Sample(known, rng)
		if err != nil {
			fmt.Println("  (malformed output)")
			continue
		}
		vs, _ := pipe.Violations(rec)
		fmt.Printf("  I = %v  violations: %v\n", rec["I"], vs)
	}

	fmt.Println("\n-- LeJIT (solver-guided) --")
	for i := 0; i < 3; i++ {
		rec, stats, err := pipe.Impute(known, rng)
		if err != nil {
			log.Fatal(err)
		}
		vs, _ := pipe.Violations(rec)
		fmt.Printf("  I = %v  violations: %v  (masked %d steps, %d solver checks)\n",
			rec["I"], vs, stats.MaskedSteps, stats.SolverChecks)
	}
	fmt.Println("\nLeJIT output always satisfies R1-R3; vanilla output usually does not.")
}

// makeCorpus draws rule-compliant training records: bursty ingress vectors
// with congestion marks only when a burst occurred.
func makeCorpus(rng *rand.Rand, n int) []lejit.Record {
	recs := make([]lejit.Record, n)
	for i := range recs {
		x := make([]int64, 5)
		var total, maxI int64
		for j := range x {
			if rng.Float64() < 0.25 {
				x[j] = 30 + int64(rng.Intn(31)) // burst
			} else {
				x[j] = int64(rng.Intn(25))
			}
			total += x[j]
			if x[j] > maxI {
				maxI = x[j]
			}
		}
		var cong int64
		if maxI >= 30 && rng.Float64() < 0.8 {
			cong = 1 + int64(rng.Intn(20))
		}
		recs[i] = lejit.Record{"TotalIngress": {total}, "Congestion": {cong}, "I": x}
	}
	return recs
}
