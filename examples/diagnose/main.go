// Diagnose example: what happens when an operator's rules and reality
// disagree? LeJIT detects that a prompt admits NO rule-compliant completion
// before generating a single token (the lookahead guarantee), and the
// diagnosis API names a minimal set of conflicting rules. The example also
// shows beam-search decoding: the deterministic, most-likely compliant
// output with its sequence log-probability.
//
// Run with:
//
//	go run ./examples/diagnose
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/lejit"
)

func main() {
	schema := lejit.TelemetrySchema()
	train := lejit.SimulateTelemetry(12, 60, 31)

	model, err := lejit.NewModel(lejit.ModelConfig{
		Vocab: lejit.TelemetryTokenizer().Size(), Ctx: 48, Dim: 32, Heads: 2, Layers: 2,
	}, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training...")
	if _, err := lejit.TrainOnRecords(model, train, schema, lejit.TrainConfig{Epochs: 2, Seed: 9}); err != nil {
		log.Fatal(err)
	}

	// An over-constrained rule set: the burst requirement and the per-slot
	// cap conflict for some prompts.
	rs, err := lejit.ParseRules(`
const BW = 60
rule conserve:  sum(I) == TotalIngress
rule capacity:  max(I) <= BW
rule burst:     Congestion > 0 -> max(I) >= BW/2
rule smooth:    forall t in 0..3: I[t+1] - I[t] <= 20 and I[t] - I[t+1] <= 20
`, schema)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := lejit.NewPipeline(model, schema, rs)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))

	// Case 1: a contradictory prompt. TotalIngress=10 with Congestion>0:
	// the burst rule needs some I ≥ 30, but conservation caps the sum at 10.
	bad := lejit.Record{
		"TotalIngress": {10}, "Congestion": {12}, "Retrans": {1},
		"Egress": {8}, "Conns": {4},
	}
	_, _, err = pipe.Impute(bad, rng)
	if !lejit.IsInfeasible(err) {
		log.Fatalf("expected infeasibility, got %v", err)
	}
	fmt.Println("\nprompt TotalIngress=10, Congestion=12 has no compliant completion.")
	culprits, err := pipe.Diagnose(bad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimal conflicting rules: %v\n", culprits)
	fmt.Println("(drop either one and the prompt becomes satisfiable)")

	// Case 2: a healthy prompt, decoded three ways.
	good := lejit.Record{
		"TotalIngress": {120}, "Congestion": {9}, "Retrans": {2},
		"Egress": {70}, "Conns": {11},
	}
	fmt.Println("\nprompt TotalIngress=120, Congestion=9:")
	rec, _, err := pipe.Impute(good, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  sampled:      I = %v\n", rec["I"])
	rec, stats, err := pipe.ImputeBeam(good, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  greedy:       I = %v  (logprob %.2f)\n", rec["I"], stats.LogProb)
	rec, stats, err = pipe.ImputeBeam(good, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  beam-4:       I = %v  (logprob %.2f)\n", rec["I"], stats.LogProb)
	if vs, _ := pipe.Violations(rec); len(vs) > 0 {
		log.Fatalf("violations: %v", vs)
	}
	fmt.Println("\nall three outputs satisfy every rule; beam maximizes sequence likelihood.")
}
