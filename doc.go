// Package repro is the root of the LeJIT reproduction: Just-in-Time Logic
// Enforcement for network management (Hè & Apostolaki, HotNets '25),
// implemented from scratch in pure Go.
//
// The public API lives in repro/lejit; the paper's engine and every
// substrate it depends on live under internal/ (see DESIGN.md for the
// inventory). bench_test.go in this directory holds one benchmark per
// figure in the paper's evaluation plus microbenches of the solver, the
// model, and the decoding engine.
package repro
