package repro

// One benchmark per figure in the paper's evaluation (§4, Figures 3–5) plus
// microbenches of every hot component: the SMT solver, the transformer, the
// guided decoder, the miner, and the baselines. Run with:
//
//	go test -bench=. -benchmem
//
// The figure benches operate at a small scale (the env below) so a full
// sweep completes in minutes; cmd/lejit-bench regenerates the figures at the
// committed scales and EXPERIMENTS.md records those results.

import (
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/mining"
	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/smt"
	"repro/internal/vocab"
)

var (
	envOnce sync.Once
	envVal  *experiments.Env
	envErr  error
)

// benchEnv prepares (once) a small trained environment shared by all figure
// benches: 12 racks, a 1-layer model, mined rule sets.
func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() {
		sc := experiments.TinyScale()
		sc.CacheDir = "artifacts"
		envVal, envErr = experiments.Prepare(sc)
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return envVal
}

func benchEngine(b *testing.B, rs *rules.RuleSet, mode core.Mode) *core.Engine {
	b.Helper()
	eng, err := benchEnv(b).EngineFor(rs, mode)
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// imputePrompts yields cyclic test prompts.
func imputePrompts(b *testing.B) []rules.Record {
	env := benchEnv(b)
	recs := env.TestRecordsN(0)
	prompts := make([]rules.Record, len(recs))
	for i, r := range recs {
		prompts[i] = experiments.CoarseOf(r)
	}
	return prompts
}

// --- Fig 3 (left): per-decoder record decode incl. compliance check -------

func benchImputeMethod(b *testing.B, run func(rules.Record, *rand.Rand) (core.Result, error)) {
	prompts := imputePrompts(b)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := run(prompts[i%len(prompts)], rng)
		if err != nil {
			// Rejection/vanilla may legitimately fail on hard prompts.
			continue
		}
	}
}

// BenchmarkFig3LeftViolations measures the full Fig 3 (left) pipeline — all
// seven methods over the test prompts with violation scoring — once per
// iteration.
func BenchmarkFig3LeftViolations(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunImputation(env); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig 3 (right): per-record runtime of each decoder ---------------------

func BenchmarkFig3RightLeJIT(b *testing.B) {
	eng := benchEngine(b, benchEnv(b).ImputeRules, core.LeJIT)
	benchImputeMethod(b, eng.Impute)
}

func BenchmarkFig3RightVanilla(b *testing.B) {
	eng := benchEngine(b, benchEnv(b).ImputeRules, core.LeJIT)
	benchImputeMethod(b, eng.Vanilla)
}

func BenchmarkFig3RightRejection(b *testing.B) {
	eng := benchEngine(b, benchEnv(b).ImputeRules, core.LeJIT)
	benchImputeMethod(b, eng.Rejection)
}

func BenchmarkFig3RightPostHoc(b *testing.B) {
	eng := benchEngine(b, benchEnv(b).ImputeRules, core.LeJIT)
	benchImputeMethod(b, eng.PostHoc)
}

func BenchmarkFig3RightLeJITManual(b *testing.B) {
	eng := benchEngine(b, benchEnv(b).ManualRules, core.LeJIT)
	benchImputeMethod(b, eng.Impute)
}

// --- Fig 4: imputation accuracy + burst analysis ---------------------------

// BenchmarkFig4LeftAccuracy measures the accuracy-metric computation over a
// decoded batch (MAE/EMD/p99/autocorrelation — the Fig 4 left columns).
func BenchmarkFig4LeftAccuracy(b *testing.B) {
	env := benchEnv(b)
	eng := benchEngine(b, env.ImputeRules, core.LeJIT)
	rng := rand.New(rand.NewSource(2))
	var preds, truths [][]int64
	for _, rec := range env.TestRecordsN(0) {
		res, err := eng.Impute(experiments.CoarseOf(rec), rng)
		if err != nil {
			continue
		}
		preds = append(preds, res.Rec[dataset.FineField])
		truths = append(truths, rec[dataset.FineField])
	}
	if len(preds) == 0 {
		b.Fatal("no decoded records")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.MAE(preds, truths); err != nil {
			b.Fatal(err)
		}
		_ = metrics.P99Error(preds, truths)
		_ = metrics.AutocorrError(preds, truths)
	}
}

// BenchmarkFig4RightBursts measures burst analysis over a decoded batch.
func BenchmarkFig4RightBursts(b *testing.B) {
	env := benchEnv(b)
	truths := make([][]int64, 0, env.Scale.TestN)
	for _, rec := range env.TestRecordsN(0) {
		truths = append(truths, rec[dataset.FineField])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.BurstAnalysis(truths, truths, dataset.BW/2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig 5: synthesis ------------------------------------------------------

func BenchmarkFig5LeJITGenerate(b *testing.B) {
	eng := benchEngine(b, benchEnv(b).SynthRules, core.LeJIT)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Generate(rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Synthesis(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSynthesis(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Generators(b *testing.B) {
	env := benchEnv(b)
	train := dataset.Records(env.Train)
	gens := []baselines.Generator{
		baselines.NewNetShare(env.Schema, 0),
		baselines.NewEWGANGP(env.Schema),
		baselines.NewCTGAN(env.Schema, 0, 1),
		baselines.NewTVAE(env.Schema, 0),
	}
	for _, g := range gens {
		if err := g.Fit(train); err != nil {
			b.Fatal(err)
		}
		b.Run(g.Name(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			for i := 0; i < b.N; i++ {
				if _, err := g.Sample(rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation benches -------------------------------------------------------

// BenchmarkLockStepDecode measures a full lock-step group decode (one
// BatchSession shared by `lanes` records) against the same records decoded
// one at a time on the per-record path; compare ns/op across the sub-benches
// scaled by lane count.
func BenchmarkLockStepDecode(b *testing.B) {
	eng := benchEngine(b, benchEnv(b).ImputeRules, core.LeJIT)
	prompts := imputePrompts(b)
	for _, lanes := range []int{1, 4, 8} {
		b.Run(strconv.Itoa(lanes)+"lanes", func(b *testing.B) {
			reqs := make([]core.BatchRequest, lanes)
			for i := range reqs {
				reqs[i].Prompt = prompts[i%len(prompts)]
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := eng.DecodeRequests(nil, reqs, 1, int64(i), nil)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range out {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

func BenchmarkAblationStructureOnly(b *testing.B) {
	eng := benchEngine(b, benchEnv(b).ImputeRules, core.StructureOnly)
	benchImputeMethod(b, eng.Impute)
}

// --- Component microbenches --------------------------------------------------

func BenchmarkSMTCheckPaperRules(b *testing.B) {
	schema := dataset.Schema()
	rs, err := rules.ParseRuleSet(experiments.ManualRulesText, schema)
	if err != nil {
		b.Fatal(err)
	}
	s := smt.NewSolver()
	bind := rules.Instantiate(s, schema)
	f, err := rs.CompileAll(bind)
	if err != nil {
		b.Fatal(err)
	}
	s.Assert(f)
	ti, _ := bind.Vars("TotalIngress")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := s.CheckWith(smt.Eq(smt.V(ti[0]), smt.C(int64(100+i%50))))
		if r.Status == smt.Unknown {
			b.Fatal("unknown")
		}
	}
}

func BenchmarkSMTCheckMinedRules(b *testing.B) {
	env := benchEnv(b)
	s := smt.NewSolver()
	bind := rules.Instantiate(s, env.Schema)
	f, err := env.ImputeRules.CompileAll(bind)
	if err != nil {
		b.Fatal(err)
	}
	s.Assert(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := s.Check(); r.Status == smt.Unknown {
			b.Fatal("unknown")
		}
	}
}

func BenchmarkSMTFeasibleRange(b *testing.B) {
	s := smt.NewSolver()
	var sum smt.LinExpr
	var vars []smt.Var
	for i := 0; i < 5; i++ {
		v := s.NewVar("I", 0, 60)
		vars = append(vars, v)
		sum = sum.Add(smt.V(v))
	}
	s.Assert(smt.Eq(sum, smt.C(100)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, st := s.FeasibleRange(smt.V(vars[i%5])); st != smt.Sat {
			b.Fatal(st)
		}
	}
}

func BenchmarkLMSessionStep(b *testing.B) {
	env := benchEnv(b)
	sess := env.Model.NewSession()
	if err := sess.Append(vocab.BOS); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sess.Len() >= env.Model.Cfg.Ctx {
			b.StopTimer()
			sess = env.Model.NewSession()
			if err := sess.Append(vocab.BOS); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if err := sess.Append(vocab.FirstChar); err != nil {
			b.Fatal(err)
		}
		_ = sess.Logits()
	}
}

func BenchmarkLMTrainStep(b *testing.B) {
	tok := vocab.Telemetry()
	m, err := nn.New(nn.Config{Vocab: tok.Size(), Ctx: 48, Dim: 32, Heads: 2, Layers: 1}, 1)
	if err != nil {
		b.Fatal(err)
	}
	ws := dataset.Generate(dataset.Config{Racks: 1, WindowsPerRack: 16, Seed: 1})
	seqs, err := experiments.Corpus(tok, ws)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Train(seqs, nn.TrainConfig{Epochs: 1, Batch: 16, Seed: int64(i), Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuleMining(b *testing.B) {
	ws := dataset.Generate(dataset.Config{Racks: 8, WindowsPerRack: 60, Seed: 1})
	recs := dataset.Records(ws)
	schema := dataset.Schema()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mining.Mine(recs, schema, mining.Config{Slack: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuleEval(b *testing.B) {
	env := benchEnv(b)
	rec := env.TestRecordsN(1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.ImputeRules.Violations(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBeamImpute4(b *testing.B) {
	eng := benchEngine(b, benchEnv(b).ImputeRules, core.LeJIT)
	prompts := imputePrompts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.BeamImpute(prompts[i%len(prompts)], 4); err != nil {
			if _, ok := err.(core.ErrInfeasible); !ok {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBatchImpute(b *testing.B) {
	env := benchEnv(b)
	slots, err := core.TelemetryGrammar(env.Schema, dataset.CoarseFields(), dataset.FineField)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{
		LM: core.WrapNN(env.Model), Tok: env.Tok, Schema: env.Schema,
		Rules: env.ImputeRules, Slots: slots,
		Temperature: env.Scale.Temperature,
	}
	prompts := imputePrompts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BatchImpute(cfg, prompts, 4, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiagnoseInfeasible(b *testing.B) {
	eng := benchEngine(b, benchEnv(b).ManualRules, core.LeJIT)
	known := rules.Record{"TotalIngress": {0}, "Congestion": {50}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.DiagnoseInfeasible(known); err != nil {
			b.Fatal(err)
		}
	}
}
