GO ?= go

# Where machine-readable benchmark reports land. Override per-figure, e.g.
#   make perf BENCH_OUT=BENCH_2.json
#   make bench-serve BENCH_OUT=BENCH_3.json
BENCH_OUT ?= bench.json

.PHONY: all tier1 verify bench perf bench-serve bench-spec bench-pack bench-cores bench-load fmt clean

all: verify

# Tier-1 gate: what CI and the roadmap require at minimum.
tier1:
	$(GO) build ./...
	$(GO) test ./...

# Full verify path: tier-1 plus static checks and the race detector over
# the concurrent packages (the solver, the batched decode pool, and the
# serving daemon).
verify: tier1
	$(GO) vet ./...
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	GOMAXPROCS=4 $(GO) test -race ./internal/core/... ./internal/smt/... ./internal/nn/... ./internal/server/... ./internal/router/... ./internal/prefixcache/... ./internal/pack/...

# Kernel microbenchmarks (vs seed-copy references) plus the perf figure,
# which writes the machine-readable report.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...
	$(GO) run ./cmd/lejit-bench -scale tiny -fig perf -json $(BENCH_OUT)

# Regenerate just the machine-readable perf report.
perf:
	$(GO) run ./cmd/lejit-bench -scale tiny -fig perf -json $(BENCH_OUT)

# Serving load test: end-to-end HTTP throughput/latency through lejitd's
# micro-batching queue (BENCH_3.json in the committed tree), plus the
# warm-vs-cold prefix-cache comparison (BENCH_5.json).
bench-serve:
	$(GO) run ./cmd/lejit-bench -scale tiny -fig serve -json $(BENCH_OUT)

# Speculative-decoding sweep (BENCH_6.json in the committed tree): lookahead
# 0 sweeps k in {0,2,4,8,16}; setting SPEC_LOOKAHEAD=k compares {0,k} only.
SPEC_LOOKAHEAD ?= 0
bench-spec:
	$(GO) run ./cmd/lejit-bench -scale tiny -fig spec -json $(BENCH_OUT) -lookahead $(SPEC_LOOKAHEAD)

# Domain-pack benchmark (BENCH_7.json in the committed tree): one lejitd
# serving the telemetry, routercfg, and fincompliance packs under a mixed
# workload with a fincompliance rule hot-reload fired halfway through.
bench-pack:
	$(GO) run ./cmd/lejit-bench -scale tiny -fig pack -json $(BENCH_OUT)

# Multi-core kernel sweep (BENCH_8.json in the committed tree): GOMAXPROCS ×
# batch over the sharded GEMM path plus the int8-vs-float32 comparison. The
# lejit-bench invocation itself fails if either bit-exactness boolean is
# false; the nproc guard below only refuses to *claim a speedup* from a
# single-CPU host, where the sweep can measure determinism but not scaling.
bench-cores:
	@if [ "$$(nproc)" -le 1 ]; then \
		echo "bench-cores: single-CPU host — report will carry null speedups and a warning"; fi
	$(GO) run ./cmd/lejit-bench -scale tiny -fig cores -json $(BENCH_OUT)

# Open-loop load sweep (BENCH_9.json in the committed tree): Poisson
# arrivals against lejitd fleets of 1, 2, and 4 engine shards at 4 offered
# rates, half the requests streamed over SSE. lejit-bench itself hard-fails
# unless streamed==unary bit-identity holds and zero mis-seeded/stale-epoch
# responses were observed. LOAD_CONNS caps in-flight connections (CI uses a
# small cap; the default exercises 10k).
LOAD_CONNS ?= 10000
bench-load:
	$(GO) run ./cmd/lejit-bench -scale tiny -fig load -json $(BENCH_OUT) -load-conns $(LOAD_CONNS)

fmt:
	gofmt -w .

clean:
	rm -f lejit lejitd repro.test
