GO ?= go

.PHONY: all tier1 verify bench perf fmt clean

all: verify

# Tier-1 gate: what CI and the roadmap require at minimum.
tier1:
	$(GO) build ./...
	$(GO) test ./...

# Full verify path: tier-1 plus static checks and the race detector over
# the concurrent packages (the solver and the batched decode pool).
verify: tier1
	$(GO) vet ./...
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) test -race ./internal/core/... ./internal/smt/...

# Kernel microbenchmarks (vs seed-copy references) plus the perf figure,
# which writes the machine-readable report.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...
	$(GO) run ./cmd/lejit-bench -scale tiny -fig perf -json BENCH_2.json

# Regenerate just the machine-readable perf report.
perf:
	$(GO) run ./cmd/lejit-bench -scale tiny -fig perf -json BENCH_2.json

fmt:
	gofmt -w .

clean:
	rm -f lejit repro.test
